(** Facade: pick an algorithm, two agents, a graph and an exploration
    procedure; get a simulated rendezvous with its time and cost.

    This is the entry point a downstream user should start from (see
    [examples/quickstart.ml]); the individual algorithm modules expose the
    schedules for finer control. *)

type algorithm =
  | Cheap  (** Algorithm 1; arbitrary delays *)
  | Cheap_simultaneous  (** wait [(l-1)E] then explore; simultaneous start only *)
  | Fast  (** Algorithm 2; arbitrary delays *)
  | Fast_simultaneous  (** pattern [M(l)]; simultaneous start only *)
  | Fwr of int  (** [FastWithRelabeling w]; arbitrary delays *)
  | Fwr_simultaneous of int  (** simultaneous start only *)

val name : algorithm -> string

val delay_tolerant : algorithm -> bool
(** Whether the variant is proven for arbitrary starting times. *)

type party = { label : Label.t; start : int; delay : int }

val schedule :
  algorithm -> space:int -> label:Label.t -> explorer:Rv_explore.Explorer.t -> Schedule.t
(** The agent-side program.  Raises [Invalid_argument] for labels outside
    [{1..space}], or [Fwr w] with [w < 1]. *)

val proven_time_bound : algorithm -> e:int -> space:int -> int
(** The paper's worst-case time bound for the algorithm over the whole
    label space. *)

val proven_cost_bound : algorithm -> e:int -> space:int -> int
(** The paper's worst-case cost bound. *)

val run :
  ?model:Rv_sim.Sim.model ->
  ?record:bool ->
  ?trace_cap:int ->
  ?max_rounds:int ->
  g:Rv_graph.Port_graph.t ->
  explorer:(start:int -> Rv_explore.Explorer.t) ->
  algorithm:algorithm ->
  space:int ->
  party ->
  party ->
  Rv_sim.Sim.outcome
(** Simulate the two parties (distinct labels, distinct starts; delays are
    arbitrary non-negative — {!Rv_sim.Sim.run} normalizes the common
    prefix).  [explorer ~start] supplies each agent's
    exploration procedure — both must declare the same bound [E] (checked).
    [trace_cap] bounds the recorded trace ring (see {!Rv_sim.Sim.run}).
    Default [max_rounds] is the schedule duration plus the later delay,
    which the propositions guarantee is enough; a non-meeting outcome
    within that horizon indicates a bug and is reported in the outcome
    ([met = false]). *)

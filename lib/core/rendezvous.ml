module Ex = Rv_explore.Explorer
module Sim = Rv_sim.Sim

type algorithm =
  | Cheap
  | Cheap_simultaneous
  | Fast
  | Fast_simultaneous
  | Fwr of int
  | Fwr_simultaneous of int

let name = function
  | Cheap -> "cheap"
  | Cheap_simultaneous -> "cheap-sim"
  | Fast -> "fast"
  | Fast_simultaneous -> "fast-sim"
  | Fwr w -> Printf.sprintf "fwr(w=%d)" w
  | Fwr_simultaneous w -> Printf.sprintf "fwr-sim(w=%d)" w

let delay_tolerant = function
  | Cheap | Fast | Fwr _ -> true
  | Cheap_simultaneous | Fast_simultaneous | Fwr_simultaneous _ -> false

type party = { label : Label.t; start : int; delay : int }

let schedule algorithm ~space ~label ~explorer =
  Label.check ~space label;
  match algorithm with
  | Cheap -> Cheap.schedule ~label ~explorer
  | Cheap_simultaneous -> Cheap.schedule_simultaneous ~label ~explorer
  | Fast -> Fast.schedule ~label ~explorer
  | Fast_simultaneous -> Fast.schedule_simultaneous ~label ~explorer
  | Fwr w ->
      let scheme = Relabel.scheme ~space ~weight:w in
      Fwr.schedule ~scheme ~label ~explorer
  | Fwr_simultaneous w ->
      let scheme = Relabel.scheme ~space ~weight:w in
      Fwr.schedule_simultaneous ~scheme ~label ~explorer

let proven_time_bound algorithm ~e ~space =
  match algorithm with
  | Cheap -> Bounds.cheap_time ~e ~space
  | Cheap_simultaneous -> Bounds.cheap_sim_time_pair ~e ~smaller_label:space
  | Fast | Fast_simultaneous -> Bounds.fast_time ~e ~space
  | Fwr w | Fwr_simultaneous w ->
      Bounds.fwr_time ~e ~scheme:(Relabel.scheme ~space ~weight:w)

let proven_cost_bound algorithm ~e ~space =
  match algorithm with
  | Cheap -> Bounds.cheap_cost e
  | Cheap_simultaneous -> Bounds.cheap_sim_cost e
  | Fast | Fast_simultaneous -> Bounds.fast_cost ~e ~space
  | Fwr w -> Bounds.fwr_cost_general ~e ~scheme:(Relabel.scheme ~space ~weight:w)
  | Fwr_simultaneous w -> Bounds.fwr_sim_cost ~e ~scheme:(Relabel.scheme ~space ~weight:w)

let run ?model ?record ?trace_cap ?max_rounds ~g ~explorer ~algorithm ~space pa pb =
  if pa.label = pb.label then invalid_arg "Rendezvous.run: labels must be distinct";
  let ex_a = explorer ~start:pa.start and ex_b = explorer ~start:pb.start in
  if ex_a.Ex.bound <> ex_b.Ex.bound then
    invalid_arg "Rendezvous.run: the two agents' explorers declare different bounds E";
  let sched_a = schedule algorithm ~space ~label:pa.label ~explorer:ex_a in
  let sched_b = schedule algorithm ~space ~label:pb.label ~explorer:ex_b in
  let max_rounds =
    match max_rounds with
    | Some m -> m
    | None ->
        max (Schedule.duration sched_a + pa.delay) (Schedule.duration sched_b + pb.delay)
        + 1
  in
  Sim.run ?model ?record ?trace_cap ~g ~max_rounds
    { Sim.start = pa.start; delay = pa.delay; step = Schedule.to_instance sched_a }
    { Sim.start = pb.start; delay = pb.delay; step = Schedule.to_instance sched_b }

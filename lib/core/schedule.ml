module Ex = Rv_explore.Explorer

type step = Explore of Ex.t | Pause of int

type t = step list

let duration t =
  List.fold_left
    (fun acc -> function Explore e -> acc + e.Ex.bound | Pause k -> acc + k)
    0 t

let traversal_budget t =
  List.fold_left
    (fun acc -> function Explore e -> acc + e.Ex.bound | Pause _ -> acc)
    0 t

let explorations t =
  List.fold_left (fun acc -> function Explore _ -> acc + 1 | Pause _ -> acc) 0 t

type cursor =
  | Idle
  | Pausing of int  (* rounds left to wait *)
  | Exploring of Ex.instance * int  (* live instance, rounds left *)

let to_instance t =
  let remaining = ref t in
  let cursor = ref Idle in
  (* Deep-mode observability: one span per schedule phase on the calling
     agent's lane.  [phase_open] tracks whether we owe an [end_span]; the
     final phase of a run that meets mid-phase is auto-closed by
     [Rv_obs.Obs.events].  Nothing here runs unless deep mode is on. *)
  let phase_open = ref false in
  let close_phase () =
    if !phase_open then begin
      Rv_obs.Obs.end_span ();
      phase_open := false
    end
  in
  let open_phase name cat args =
    if Rv_obs.Obs.deep () then begin
      close_phase ();
      Rv_obs.Obs.begin_span ~cat ~args name;
      phase_open := true
    end
  in
  let rec step obs =
    match !cursor with
    | Exploring (inst, left) when left > 0 ->
        cursor := Exploring (inst, left - 1);
        inst obs
    | Pausing left when left > 0 ->
        cursor := Pausing (left - 1);
        Ex.Wait
    | Idle | Exploring (_, _) | Pausing _ -> (
        (* Current step exhausted (or none yet): advance. *)
        match !remaining with
        | [] ->
            close_phase ();
            Ex.Wait
        | Pause k :: rest ->
            remaining := rest;
            cursor := Pausing k;
            open_phase "pause" "sim" [ ("rounds", Rv_obs.Json.Int k) ];
            step obs
        | Explore e :: rest ->
            remaining := rest;
            if e.Ex.bound = 0 then step obs
            else begin
              cursor := Exploring (e.Ex.fresh (), e.Ex.bound);
              open_phase
                ("explore:" ^ e.Ex.name)
                "explore"
                [ ("bound", Rv_obs.Json.Int e.Ex.bound) ];
              step obs
            end)
  in
  step

let repeat k t =
  if k < 1 then invalid_arg "Schedule.repeat: k must be >= 1";
  List.concat (List.init k (fun _ -> t))

let blocks ~explorer pattern =
  List.map
    (fun active ->
      if active then Explore explorer else Pause explorer.Ex.bound)
    pattern

let pp fmt t =
  List.iter
    (function
      | Explore e -> Format.fprintf fmt "explore[%s,%d] " e.Ex.name e.Ex.bound
      | Pause k -> Format.fprintf fmt "pause[%d] " k)
    t

(** Explicitly-typed comparators — the sanctioned replacement for bare
    polymorphic [compare] as a comparator argument (rv_lint rule R4). *)

val int : int -> int -> int
val float : float -> float -> int
val string : string -> string -> int
val bool : bool -> bool -> int
val char : char -> char -> int

val pair : ('a -> 'a -> int) -> ('b -> 'b -> int) -> 'a * 'b -> 'a * 'b -> int
(** Lexicographic. *)

val triple :
  ('a -> 'a -> int) ->
  ('b -> 'b -> int) ->
  ('c -> 'c -> int) ->
  'a * 'b * 'c ->
  'a * 'b * 'c ->
  int

val list : ('a -> 'a -> int) -> 'a list -> 'a list -> int
(** Lexicographic; shorter list first on shared prefix. *)

val option : ('a -> 'a -> int) -> 'a option -> 'a option -> int
(** [None] first. *)

val by : ('a -> 'b) -> ('b -> 'b -> int) -> 'a -> 'a -> int
(** [by key cmp] compares through a projection: [by snd int]. *)

val rev : ('a -> 'a -> int) -> 'a -> 'a -> int
(** Reversed order. *)

type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let make ?(notes = []) ~title ~headers rows =
  let width = List.length headers in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Table.make: row %d has %d cells, expected %d" i
             (List.length row) width))
    rows;
  { title; headers; rows; notes }

let column_widths t =
  let update widths row =
    List.map2 (fun w cell -> max w (String.length cell)) widths row
  in
  List.fold_left update (List.map String.length t.headers) t.rows

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let render_row widths row =
  "| " ^ String.concat " | " (List.map2 pad widths row) ^ " |"

let separator widths sep_fill =
  "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) sep_fill) widths) ^ "|"

let render_ascii t =
  let widths = column_widths t in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (separator widths '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row widths t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (separator widths '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row widths row);
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.add_string buf (separator widths '-');
  Buffer.add_char buf '\n';
  List.iter (fun n -> Buffer.add_string buf ("  " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let render_markdown t =
  let widths = column_widths t in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("### " ^ t.title ^ "\n\n");
  Buffer.add_string buf (render_row widths t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (separator widths '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row widths row);
      Buffer.add_char buf '\n')
    t.rows;
  List.iter (fun n -> Buffer.add_string buf ("\n> " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let print t =
  print_string (render_ascii t);
  print_newline ()

let cell_int = string_of_int

let cell_float ?(digits = 2) f = Printf.sprintf "%.*f" digits f

let cell_ratio a b = if Float.equal b 0.0 then "-" else cell_float (a /. b)

(* Explicitly-typed comparators.

   The repo bans bare polymorphic [compare] as a comparator (rv_lint R4):
   it is slow (runtime structure walk), unsound on floats (NaN escapes
   the order) and raises on functions.  These combinators make the typed
   replacement as terse as the polymorphic original:

     List.sort_uniq Ord.(pair int int) pairs
     List.sort Ord.(by snd float) weighted *)

let int = Int.compare
let float = Float.compare
let string = String.compare
let bool = Bool.compare
let char = Char.compare

let pair ca cb (a1, b1) (a2, b2) =
  let c = ca a1 a2 in
  if c <> 0 then c else cb b1 b2

let triple ca cb cc (a1, b1, c1) (a2, b2, c2) =
  let c = ca a1 a2 in
  if c <> 0 then c
  else
    let c = cb b1 b2 in
    if c <> 0 then c else cc c1 c2

let rec list c xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
      let r = c x y in
      if r <> 0 then r else list c xs' ys'

let option c a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> c x y

let by key c a b = c (key a) (key b)
let rev c a b = c b a

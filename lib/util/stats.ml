type summary = {
  count : int;
  min : int;
  max : int;
  mean : float;
  stddev : float;
  median : float;
  p90 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ ->
      let total = List.fold_left ( + ) 0 xs in
      float_of_int total /. float_of_int (List.length xs)

(* Percentile with linear interpolation between order statistics. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 1 then float_of_int sorted.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. float_of_int sorted.(lo)) +. (frac *. float_of_int sorted.(hi))
  end

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
      let sorted = Array.of_list xs in
      Array.sort Int.compare sorted;
      let n = Array.length sorted in
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((float_of_int x -. m) ** 2.0)) 0.0 xs
        /. float_of_int n
      in
      {
        count = n;
        min = sorted.(0);
        max = sorted.(n - 1);
        mean = m;
        stddev = sqrt var;
        median = percentile sorted 0.5;
        p90 = percentile sorted 0.9;
      }

let argmax f = function
  | [] -> invalid_arg "Stats.argmax: empty"
  | x :: xs ->
      List.fold_left
        (fun (best, best_v) y ->
          let v = f y in
          if v > best_v then (y, v) else (best, best_v))
        (x, f x) xs

let argmin f xs =
  let x, v = argmax (fun x -> -f x) xs in
  (x, -v)

let linear_fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need >= 2 points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 points in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x range";
  let b = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let a = (sy -. (b *. sx)) /. fn in
  (a, b)

(** Shared progress counters for a running sweep.

    All counters are atomics, safe to update from any worker domain; the
    numbers are monitoring-grade (exact at quiescence, racy snapshots
    mid-flight) and never feed back into results, so they cannot break
    the engine's determinism guarantee. *)

type t

val create : ?total:int -> unit -> t
(** [create ~total ()] starts the elapsed-time clock.  [total] (default
    0, meaning unknown) is the expected number of tasks, used only for
    rendering. *)

val tick : t -> unit
(** One task finished. *)

val observe : t -> time:int -> cost:int -> unit
(** Fold one simulated configuration's outcome into the worst-so-far
    counters (monotone atomic max). *)

val completed : t -> int
val total : t -> int
val worst_time : t -> int
val worst_cost : t -> int

val elapsed : t -> float
(** Wall-clock seconds since {!create}. *)

val throughput : t -> float
(** Completed tasks per second of elapsed time ([0.] before the clock has
    advanced).  Derived from the atomic counters; racy mid-flight like
    everything else here. *)

val eta : t -> float option
(** Estimated seconds to completion, extrapolating {!throughput} over the
    remaining tasks.  [None] when [total] is unknown, nothing has
    completed yet, or the sweep already finished. *)

val report : t -> string
(** One-line human summary, e.g.
    ["6/8 tasks, worst time 736, worst cost 253, 0.42s elapsed, 14.3 tasks/s, ETA 0.1s"]
    (throughput and ETA appear once derivable). *)

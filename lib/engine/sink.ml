type target =
  | Null
  | Jsonl of out_channel
  | Csv of out_channel
  | Memory of Record.t list ref
  | Tee of t list

(* A sink-owned file is written as [<path>.tmp.<pid>] and renamed into
   place on [close]: a crash or a killed sweep leaves the previous
   output intact instead of a truncated half-file, and readers polling
   [path] never observe a partial write (rename is atomic on POSIX). *)
and owned_file = {
  oc : out_channel;
  tmp_path : string;
  final_path : string;
  fsync : bool;
}

and t = {
  lock : Mutex.t;
  target : target;
  owned : owned_file option;  (* renamed+closed by [close]; [None] = caller's channel *)
  mutable emitted : int;
  mutable closed : bool;
}

let make ?owned target =
  { lock = Mutex.create (); target; owned; emitted = 0; closed = false }

let null () = make Null
let memory () = make (Memory (ref []))
let jsonl oc = make (Jsonl oc)

let write_csv_header oc = output_string oc (Record.csv_header ^ "\n")

let csv oc =
  write_csv_header oc;
  make (Csv oc)

let file ?(fsync = false) format path =
  let tmp_path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp_path in
  let owned = { oc; tmp_path; final_path = path; fsync } in
  match format with
  | `Jsonl -> make ~owned (Jsonl oc)
  | `Csv ->
      write_csv_header oc;
      make ~owned (Csv oc)

let tee children = make (Tee children)

let rec emit t r =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Sink.emit: sink is closed"
  end;
  t.emitted <- t.emitted + 1;
  (match t.target with
  | Null -> ()
  | Jsonl oc -> output_string oc (Record.to_json r ^ "\n")
  | Csv oc -> output_string oc (Record.to_csv r ^ "\n")
  | Memory buf -> buf := r :: !buf
  | Tee _ -> ());
  Mutex.unlock t.lock;
  (* Children lock themselves; don't hold the parent's mutex across them. *)
  match t.target with Tee children -> List.iter (fun c -> emit c r) children | _ -> ()

let count t =
  Mutex.lock t.lock;
  let c = t.emitted in
  Mutex.unlock t.lock;
  c

let records t =
  Mutex.lock t.lock;
  let rs = match t.target with Memory buf -> List.rev !buf | _ -> [] in
  Mutex.unlock t.lock;
  rs

(* The same temp+rename discipline as [file], packaged for writers that
   produce whole artifacts (e.g. rv_index bakes): the callback sees only
   an out_channel, the final path appears in one [rename]. *)
let write_file_atomic ?(fsync = false) path f =
  let tmp_path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp_path in
  match f oc with
  | () ->
      flush oc;
      if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
      close_out oc;
      Unix.rename tmp_path path
  | exception exn ->
      (try close_out oc with Sys_error _ -> ());
      (try Sys.remove tmp_path with Sys_error _ -> ());
      raise exn

let rec close t =
  (* rv_lint: allow R7 -- close-time flush/fsync under the sink lock is
     the design: the lock is what serialises the final write against
     concurrent emitters, and close runs once on shutdown *)
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    (match t.target with
    | Jsonl oc | Csv oc -> (
        match t.owned with
        | Some o ->
            flush o.oc;
            if o.fsync then Unix.fsync (Unix.descr_of_out_channel o.oc);
            close_out o.oc;
            Unix.rename o.tmp_path o.final_path
        | None -> flush oc)
    | Null | Memory _ | Tee _ -> ())
  end;
  Mutex.unlock t.lock;
  match t.target with Tee children -> List.iter close children | _ -> ()

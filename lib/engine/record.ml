type t = {
  graph : string;
  algorithm : string;
  label_a : int;
  label_b : int;
  start_a : int;
  start_b : int;
  delay_a : int;
  delay_b : int;
  met : bool;
  time : int;
  cost : int;
}

(* JSON writing *)

let escape_json s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  Printf.sprintf
    {|{"graph":"%s","algorithm":"%s","label_a":%d,"label_b":%d,"start_a":%d,"start_b":%d,"delay_a":%d,"delay_b":%d,"met":%b,"time":%d,"cost":%d}|}
    (escape_json r.graph) (escape_json r.algorithm) r.label_a r.label_b r.start_a
    r.start_b r.delay_a r.delay_b r.met r.time r.cost

(* JSON reading: a minimal parser for the flat objects we emit — string,
   integer and boolean values only, any field order, arbitrary whitespace. *)

type value = S of string | I of int | B of bool

exception Bad of string

let of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos
    else raise (Bad (Printf.sprintf "expected '%c' at position %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Bad "unterminated string");
      let c = line.[!pos] in
      incr pos;
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
          if !pos >= n then raise (Bad "unterminated escape");
          let e = line.[!pos] in
          incr pos;
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 > n then raise (Bad "truncated \\u escape");
              let hex = String.sub line !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> raise (Bad ("bad \\u escape " ^ hex))
              in
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else raise (Bad "non-ASCII \\u escapes are not supported")
          | c -> raise (Bad (Printf.sprintf "unknown escape \\%c" c)));
          go ()
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_literal lit =
    if !pos + String.length lit <= n && String.sub line !pos (String.length lit) = lit
    then pos := !pos + String.length lit
    else raise (Bad (Printf.sprintf "bad literal at position %d" !pos))
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while !pos < n && (match line.[!pos] with '0' .. '9' -> true | _ -> false) do
      incr pos
    done;
    if !pos = start then raise (Bad (Printf.sprintf "expected integer at position %d" start));
    int_of_string (String.sub line start (!pos - start))
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> S (parse_string ())
    | Some 't' -> parse_literal "true"; B true
    | Some 'f' -> parse_literal "false"; B false
    | Some ('-' | '0' .. '9') -> I (parse_int ())
    | _ -> raise (Bad (Printf.sprintf "unsupported value at position %d" !pos))
  in
  try
    expect '{';
    let fields = ref [] in
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        let key = (skip_ws (); parse_string ()) in
        expect ':';
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; members ()
        | Some '}' -> incr pos
        | _ -> raise (Bad "expected ',' or '}'")
      in
      members ()
    end;
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage after object");
    let fields = !fields in
    let str k =
      match List.assoc_opt k fields with
      | Some (S s) -> s
      | Some _ -> raise (Bad (k ^ ": expected a string"))
      | None -> raise (Bad ("missing field " ^ k))
    in
    let int k =
      match List.assoc_opt k fields with
      | Some (I i) -> i
      | Some _ -> raise (Bad (k ^ ": expected an integer"))
      | None -> raise (Bad ("missing field " ^ k))
    in
    let bool k =
      match List.assoc_opt k fields with
      | Some (B b) -> b
      | Some _ -> raise (Bad (k ^ ": expected a boolean"))
      | None -> raise (Bad ("missing field " ^ k))
    in
    Ok
      {
        graph = str "graph";
        algorithm = str "algorithm";
        label_a = int "label_a";
        label_b = int "label_b";
        start_a = int "start_a";
        start_b = int "start_b";
        delay_a = int "delay_a";
        delay_b = int "delay_b";
        met = bool "met";
        time = int "time";
        cost = int "cost";
      }
  with Bad msg -> Error msg

(* CSV *)

let csv_header =
  "graph,algorithm,label_a,label_b,start_a,start_b,delay_a,delay_b,met,time,cost"

let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c -> if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let to_csv r =
  Printf.sprintf "%s,%s,%d,%d,%d,%d,%d,%d,%b,%d,%d" (escape_csv r.graph)
    (escape_csv r.algorithm) r.label_a r.label_b r.start_a r.start_b r.delay_a
    r.delay_b r.met r.time r.cost

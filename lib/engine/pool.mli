(** A fixed-size pool of worker domains fed from a shared task queue.

    The pool is the mechanical layer of the sweep engine: it knows nothing
    about rendezvous, only how to run [total] independent index-addressed
    units of work across [jobs] domains.  Work is submitted in contiguous
    chunks that workers claim dynamically from a queue, so uneven task
    costs (adversarial label pairs differ wildly in simulation length)
    balance automatically.

    Determinism is the caller's contract, not the pool's: {!run} gives no
    ordering guarantee between indices, so callers must write results into
    per-index slots and combine them in index order afterwards — that is
    exactly what {!Sweep} does.

    A pool created with [jobs <= 1] spawns no domains and {!run} executes
    inline, in index order; this is the sequential fallback used when
    [--jobs 1] is requested. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs] worker domains when [jobs > 1] and
    none otherwise.  Default [jobs] is
    [Domain.recommended_domain_count ()].  Values below 1 are clamped
    to 1. *)

val jobs : t -> int
(** The configured parallelism (1 means inline execution, no domains). *)

val pending : t -> int
(** Chunks queued but not yet claimed by a worker — a load signal for
    callers that layer admission control on top (rv_serve health
    probes).  Momentary by nature: the value may be stale the instant it
    is returned. *)

val run : t -> ?chunk:int -> total:int -> (int -> unit) -> unit
(** [run t ~total f] evaluates [f i] once for every [i] in [0 .. total-1]
    and returns when all are done.  [chunk] (default: [total / (8*jobs)],
    at least 1) is the number of consecutive indices a worker claims at a
    time.  If some [f i] raises, the remaining scheduled chunks still run
    and the first recorded exception is re-raised in the caller.

    Must not be called from within a task of the same pool (the submitting
    domain blocks until completion) and raises [Invalid_argument] on a
    pool that has been shut down. *)

val shutdown : t -> unit
(** Drain the queue, stop the workers and join their domains.  Idempotent;
    safe on a pool that never ran a task. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)

(** Deterministic parallel map-reduce over an index space.

    The engine's central guarantee: results are {e bit-for-bit identical}
    to a sequential run, for any pool size.  The mechanism is standard —
    [map] runs on whatever domain claims the index, each result lands in
    its own slot, and the reduction folds the slots in task-index order
    [0, 1, 2, ...] on the calling domain.  Since [merge] is applied in
    the same order with the same operands either way, parallelism is
    unobservable in the result (provided [map] itself is a pure function
    of its index, which every rendezvous simulation is: graphs are
    immutable and explorer state is created fresh per run).

    When [pool] is absent, or has [jobs = 1], everything runs inline in
    index order — the sequential fallback for [--jobs 1]. *)

val map_array : ?pool:Pool.t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [map_array n f] is [[| f 0; f 1; ...; f (n-1) |]], evaluated in
    parallel when a multi-domain [pool] is supplied.  Sequentially the
    calls happen in increasing index order. *)

val map_nested :
  ?pool:Pool.t -> ?chunk:int -> int array -> (int -> int -> 'a) -> 'a array array
(** [map_nested counts f] is the ragged array
    [[| [| f 0 0; ... |]; [| f 1 0; ... |]; ... |]] with
    [Array.length result.(o) = counts.(o)], evaluated over the
    {e flattened} index space: the pool balances across all
    [sum counts] cells rather than across the outer index alone.  An
    orbit-reduced sweep uses this to split one label pair's
    representative cells into subtasks without making the decomposition
    (or the result) depend on the pool size — the subtask space is a
    pure function of [counts]. *)

val map_reduce :
  ?pool:Pool.t ->
  ?chunk:int ->
  n:int ->
  map:(int -> 'a) ->
  merge:('b -> 'a -> 'b) ->
  init:'b ->
  unit ->
  'b
(** [map_reduce ~n ~map ~merge ~init ()] is
    [merge (... (merge (merge init (map 0)) (map 1)) ...) (map (n-1))]:
    a left fold of [merge] over the mapped results in index order.
    [merge] need not be associative or commutative — it is only ever
    applied on the calling domain, in order. *)

val map_list : ?pool:Pool.t -> ?chunk:int -> 'a list -> f:('a -> 'b) -> 'b list
(** [map_list xs ~f] is [List.map f xs] with the maps run on the pool. *)

(* Per-task latency lands in the "engine.task_us" histogram when
   instrumentation is on; the wrapper is chosen once per map, so the
   disabled path adds a single branch per [map_array], not per task. *)
let timed n f =
  if n > 0 && Rv_obs.Obs.enabled () then begin
    let hist = Rv_obs.Histogram.find "engine.task_us" in
    fun i ->
      let t0 = Rv_obs.Obs.now_us () in
      let r = f i in
      Rv_obs.Histogram.observe_t hist (int_of_float (Rv_obs.Obs.now_us () -. t0));
      r
  end
  else f

let sequential n f =
  if n = 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    for i = 1 to n - 1 do
      a.(i) <- f i
    done;
    a
  end

let map_array ?pool ?chunk n f =
  if n < 0 then invalid_arg "Sweep.map_array: negative size";
  let f = timed n f in
  let jobs = match pool with Some p -> Pool.jobs p | None -> 1 in
  Rv_obs.Obs.span ~cat:"engine"
    ~args:[ ("n", Rv_obs.Json.Int n); ("jobs", Rv_obs.Json.Int jobs) ]
    "sweep.map_array"
    (fun () ->
      match pool with
      | Some p when Pool.jobs p > 1 && n > 1 ->
          (* Each slot is written by exactly one task and read only after the
             pool's completion latch, so the option array needs no lock. *)
          let slots = Array.make n None in
          Pool.run p ?chunk ~total:n (fun i -> slots.(i) <- Some (f i));
          Array.map (function Some v -> v | None -> assert false) slots
      | Some _ | None -> sequential n f)

let map_nested ?pool ?chunk counts f =
  let outers = Array.length counts in
  let total = Array.fold_left (fun acc c ->
      if c < 0 then invalid_arg "Sweep.map_nested: negative count";
      acc + c) 0 counts
  in
  (* Flatten the ragged (outer, inner) space onto one task index space so
     the pool balances across outers of very different sizes — an
     orbit-reduced sweep can concentrate most of its work in a few
     outers.  The subtask count is [total], fixed by [counts] alone, so
     the task decomposition (and hence the result) is identical for
     every pool size. *)
  let outer_of = Array.make (max total 1) 0 in
  let off = Array.make (outers + 1) 0 in
  for o = 0 to outers - 1 do
    off.(o + 1) <- off.(o) + counts.(o);
    Array.fill outer_of off.(o) counts.(o) o
  done;
  let flat = map_array ?pool ?chunk total (fun k ->
      let o = outer_of.(k) in
      f o (k - off.(o)))
  in
  Array.init outers (fun o -> Array.sub flat off.(o) counts.(o))

let map_reduce ?pool ?chunk ~n ~map ~merge ~init () =
  Array.fold_left merge init (map_array ?pool ?chunk n map)

let map_list ?pool ?chunk xs ~f =
  let arr = Array.of_list xs in
  Array.to_list (map_array ?pool ?chunk (Array.length arr) (fun i -> f arr.(i)))

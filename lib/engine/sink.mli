(** Streaming result sinks for sweep records.

    A sink consumes {!Record.t} values one at a time.  All sinks are
    thread-safe (a mutex per sink), but the engine's wiring never relies
    on that for ordering: {!Sweep} merges task results in index order on
    the calling domain, and [Workload.worst_for] emits records during
    that merge — so the byte stream written by a JSONL or CSV sink is
    identical for any [--jobs] value. *)

type t

val null : unit -> t
(** Discards records (but still counts them). *)

val memory : unit -> t
(** Buffers records in memory; retrieve them with {!records}. *)

val jsonl : out_channel -> t
(** Writes one {!Record.to_json} line per record.  The channel stays
    owned by the caller; {!close} only flushes it. *)

val csv : out_channel -> t
(** Writes {!Record.csv_header} immediately, then one row per record.
    The channel stays owned by the caller; {!close} only flushes it. *)

val file : ?fsync:bool -> [ `Jsonl | `Csv ] -> string -> t
(** Like {!jsonl} / {!csv} on a sink-owned file, written atomically: the
    bytes go to [<path>.tmp.<pid>] and {!close} renames the finished
    file into place, so a crashed or killed run leaves any previous
    output at [path] untouched and concurrent readers never see a
    partial file.  [fsync] (default false) additionally flushes the data
    to stable storage before the rename. *)

val tee : t list -> t
(** Broadcasts every record to each sub-sink. *)

val write_file_atomic : ?fsync:bool -> string -> (out_channel -> unit) -> unit
(** [write_file_atomic path f] runs [f] on a fresh [<path>.tmp.<pid>]
    channel (binary mode) and renames it to [path] on success — the same
    publication discipline as {!file}, for callers that write whole
    artifacts themselves (the rv_index baker).  On exception the temp
    file is removed and the exception re-raised; [fsync] (default false)
    flushes to stable storage before the rename. *)

val emit : t -> Record.t -> unit
(** Raises [Invalid_argument] on a closed sink. *)

val count : t -> int
(** Records emitted to this sink so far. *)

val records : t -> Record.t list
(** Buffered records in emission order — {!memory} sinks only; [[]] for
    every other kind (a {!tee} delegates to its children, so query them
    directly). *)

val close : t -> unit
(** Flush, release any owned channel, recursively close tee children.
    Idempotent. *)

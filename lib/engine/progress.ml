type t = {
  total : int;
  completed : int Atomic.t;
  worst_time : int Atomic.t;
  worst_cost : int Atomic.t;
  started : float;
}

let create ?(total = 0) () =
  {
    total;
    completed = Atomic.make 0;
    worst_time = Atomic.make 0;
    worst_cost = Atomic.make 0;
    started = Unix.gettimeofday ();
  }

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let tick t = Atomic.incr t.completed

let observe t ~time ~cost =
  atomic_max t.worst_time time;
  atomic_max t.worst_cost cost

let completed t = Atomic.get t.completed
let total t = t.total
let worst_time t = Atomic.get t.worst_time
let worst_cost t = Atomic.get t.worst_cost
let elapsed t = Unix.gettimeofday () -. t.started

let report t =
  let tasks =
    if t.total > 0 then Printf.sprintf "%d/%d tasks" (completed t) t.total
    else Printf.sprintf "%d tasks" (completed t)
  in
  Printf.sprintf "%s, worst time %d, worst cost %d, %.2fs elapsed" tasks
    (worst_time t) (worst_cost t) (elapsed t)

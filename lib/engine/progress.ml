type t = {
  total : int;
  completed : int Atomic.t;
  worst_time : int Atomic.t;
  worst_cost : int Atomic.t;
  started : float;
}

let create ?(total = 0) () =
  {
    total;
    completed = Atomic.make 0;
    worst_time = Atomic.make 0;
    worst_cost = Atomic.make 0;
    (* rv_lint: allow R1 -- progress display is wall time by design; never feeds results *)
    started = Unix.gettimeofday ();
  }

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let tick t = Atomic.incr t.completed

let observe t ~time ~cost =
  atomic_max t.worst_time time;
  atomic_max t.worst_cost cost

let completed t = Atomic.get t.completed
let total t = t.total
let worst_time t = Atomic.get t.worst_time
let worst_cost t = Atomic.get t.worst_cost
(* rv_lint: allow R1 -- elapsed wall time drives the progress display only *)
let elapsed t = Unix.gettimeofday () -. t.started

let throughput t =
  let e = elapsed t in
  if e <= 0. then 0. else float_of_int (completed t) /. e

let eta t =
  let done_ = completed t in
  if t.total <= 0 || done_ <= 0 || done_ >= t.total then None
  else
    let rate = throughput t in
    if rate <= 0. then None else Some (float_of_int (t.total - done_) /. rate)

let report t =
  let tasks =
    if t.total > 0 then Printf.sprintf "%d/%d tasks" (completed t) t.total
    else Printf.sprintf "%d tasks" (completed t)
  in
  let pace =
    let tp = throughput t in
    if tp <= 0. then ""
    else
      match eta t with
      | Some s -> Printf.sprintf ", %.1f tasks/s, ETA %.1fs" tp s
      | None -> Printf.sprintf ", %.1f tasks/s" tp
  in
  Printf.sprintf "%s, worst time %d, worst cost %d, %.2fs elapsed%s" tasks
    (worst_time t) (worst_cost t) (elapsed t) pace

(** One simulated configuration's outcome, as a flat serializable record.

    This is the unit streamed by {!Sink}: every single rendezvous
    simulation inside a sweep produces one record identifying the full
    configuration (graph, algorithm, labels, starts, delays) and the
    measured outcome (meeting or not, time, cost).

    The JSONL schema (one object per line, all fields always present):

    {v
    {"graph":"ring:64","algorithm":"fast","label_a":3,"label_b":11,
     "start_a":0,"start_b":32,"delay_a":0,"delay_b":5,
     "met":true,"time":812,"cost":422}
    v}

    [time] is the meeting round when [met] is [true], and the number of
    rounds simulated before giving up when [met] is [false]. *)

type t = {
  graph : string;  (** graph spec, e.g. ["ring:64"] *)
  algorithm : string;  (** algorithm name, e.g. ["fast"] *)
  label_a : int;
  label_b : int;
  start_a : int;
  start_b : int;
  delay_a : int;
  delay_b : int;
  met : bool;
  time : int;
  cost : int;
}

val to_json : t -> string
(** Single-line JSON object (no trailing newline). *)

val of_json : string -> (t, string) result
(** Parse a line produced by {!to_json}.  Tolerates whitespace and field
    reordering; [Error] describes the first problem found. *)

val csv_header : string
(** Column names, comma-separated, matching {!to_csv}. *)

val to_csv : t -> string
(** One CSV row (no trailing newline); string fields are quoted when they
    contain a comma, quote or newline. *)

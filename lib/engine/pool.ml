(* Worker domains block on [work_ready] waiting for chunks; [run] pushes
   the chunks of one submission and blocks on a private latch until its
   last chunk completes.  The queue outlives individual submissions, so a
   pool is created once per process (or per [--jobs] invocation) and
   reused across sweeps. *)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_ready : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let rec worker_loop t =
  (* rv_lint: allow R7 -- condition-variable protocol: Condition.wait
     atomically releases t.lock while parked; nothing else blocks here *)
  Mutex.lock t.lock;
  let rec next () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue, Queue.length t.queue)
    else if t.closed then None
    else begin
      Condition.wait t.work_ready t.lock;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.lock
  | Some (task, depth) ->
      Mutex.unlock t.lock;
      (* Depth after the pop: how much work was still waiting when this
         worker claimed a chunk. *)
      if Rv_obs.Obs.enabled () then Rv_obs.Histogram.observe "engine.queue_depth" depth;
      task ();
      worker_loop t

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_ready = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let pending t =
  Mutex.lock t.lock;
  let n = Queue.length t.queue in
  Mutex.unlock t.lock;
  n

let run t ?chunk ~total f =
  if total < 0 then invalid_arg "Pool.run: negative total";
  if total > 0 then begin
    if t.jobs <= 1 then
      for i = 0 to total - 1 do
        f i
      done
    else begin
      let chunk =
        match chunk with
        | Some c -> max 1 c
        | None -> max 1 (total / (8 * t.jobs))
      in
      let n_chunks = (total + chunk - 1) / chunk in
      (* Private latch per submission: workers decrement [pending]; the
         submitter sleeps on [all_done] until it reaches zero. *)
      let latch = Mutex.create () in
      let all_done = Condition.create () in
      let pending = ref n_chunks in
      let failed = ref None in
      let body lo () =
        let obs = Rv_obs.Obs.enabled () in
        let t0 = if obs then Rv_obs.Obs.now_us () else 0. in
        if obs then
          Rv_obs.Obs.begin_span ~cat:"engine"
            ~args:[ ("lo", Rv_obs.Json.Int lo); ("chunk", Rv_obs.Json.Int chunk) ]
            "pool.chunk";
        (try
           let hi = min total (lo + chunk) in
           for i = lo to hi - 1 do
             f i
           done
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock latch;
           if !failed = None then failed := Some (e, bt);
           Mutex.unlock latch);
        if obs then begin
          Rv_obs.Obs.end_span ();
          Rv_obs.Counter.count "engine.chunks" 1;
          Rv_obs.Histogram.observe "engine.chunk_us"
            (int_of_float (Rv_obs.Obs.now_us () -. t0))
        end;
        Mutex.lock latch;
        decr pending;
        if !pending = 0 then Condition.signal all_done;
        Mutex.unlock latch
      in
      Mutex.lock t.lock;
      if t.closed then begin
        Mutex.unlock t.lock;
        invalid_arg "Pool.run: pool is shut down"
      end;
      for c = 0 to n_chunks - 1 do
        Queue.push (body (c * chunk)) t.queue
      done;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.lock;
      if Rv_obs.Obs.enabled () then
        Rv_obs.Obs.instant ~cat:"engine"
          ~args:
            [
              ("chunks", Rv_obs.Json.Int n_chunks);
              ("total", Rv_obs.Json.Int total);
              ("jobs", Rv_obs.Json.Int t.jobs);
            ]
          "pool.submit";
      (* rv_lint: allow R7 -- completion-latch protocol: Condition.wait
         releases the latch while parked; the submitter must block until
         all chunks drain *)
      Mutex.lock latch;
      while !pending > 0 do
        Condition.wait all_done latch
      done;
      Mutex.unlock latch;
      match !failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.lock;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

module R = Rv_core.Rendezvous
module Table = Rv_util.Table

let worst_at_delay ?pool ~g ~n ~space ~labels:(la, lb) ~algorithm ~tau () =
  let explorer ~start =
    ignore start;
    Rv_explore.Ring_walk.clockwise ~n
  in
  Workload.worst_for ?pool ~g ~algorithm ~space ~explorer ~pairs:[ (la, lb) ]
    ~positions:`Fixed_first ~delays:[ (0, tau) ] ()

let table ?pool ?(n = 16) ?(space = 16) ?(labels = (3, 11)) () =
  let g = Rv_graph.Ring.oriented n in
  let e = n - 1 in
  let taus = [ 0; 1; e / 4; e / 2; (3 * e) / 4; e; e + 1; (3 * e) / 2; 2 * e; 3 * e ] in
  let taus = List.sort_uniq Int.compare taus in
  let rows =
    List.concat_map
      (fun tau ->
        List.filter_map
          (fun algorithm ->
            match worst_at_delay ?pool ~g ~n ~space ~labels ~algorithm ~tau () with
            | Error msg ->
                Some [ R.name algorithm; string_of_int tau; "FAIL: " ^ msg; "-"; "-" ]
            | Ok (t, c) ->
                Some
                  [
                    R.name algorithm;
                    string_of_int tau;
                    string_of_int t;
                    string_of_int c;
                    (if tau > e then "delayed regime (<= E expected)" else "");
                  ])
          [ R.Cheap; R.Fast ])
      taus
  in
  let la, lb = labels in
  Table.make
    ~title:
      (Printf.sprintf
         "EXP-E: time/cost vs wake-up delay tau (ring n=%d, E=%d, L=%d, labels %d vs %d)" n
         e space la lb)
    ~headers:[ "algorithm"; "tau"; "worst time"; "worst cost"; "regime" ]
    ~notes:
      [
        "Worst over all starting gaps; the later agent sleeps tau rounds.";
        "Past tau = E the earlier agent's first exploration finds the sleeping agent:";
        "both time and cost drop to at most E.";
      ]
    rows

let bench_kernel () =
  let n = 12 in
  let g = Rv_graph.Ring.oriented n in
  match worst_at_delay ~g ~n ~space:16 ~labels:(3, 11) ~algorithm:R.Fast ~tau:5 () with
  | Ok _ -> ()
  | Error _ -> ()

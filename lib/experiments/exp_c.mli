(** EXP-C — Theorem 3.2's shape: at time [O(E log L)], cost grows as
    [Theta(E log L)].

    Measures the worst-case cost of Algorithm [Fast] as [L] grows
    geometrically on a fixed oriented ring, fits a line in [log2 L], and
    reports the slope in units of [E]. *)

val table :
  ?pool:Rv_engine.Pool.t -> ?n:int -> ?spaces:int list -> unit -> Rv_util.Table.t

val bench_kernel : unit -> unit

(** The full experiment suite: every table from the index in DESIGN.md,
    in order.  [bench/main.exe] prints all of them and additionally times
    each experiment's kernel with Bechamel; [bin/rv exp] prints selected
    ones.

    [pool] parallelizes the adversarial sweeps inside each experiment
    that has one (EXP-A..F, J); the tables are bit-for-bit identical with
    and without it (see {!Rv_engine.Sweep}).  Experiments whose work is
    not sweep-shaped (the lower-bound pipelines, ablations, async, ...)
    ignore it. *)

val all : ?pool:Rv_engine.Pool.t -> unit -> (string * Rv_util.Table.t) list
(** [(experiment id, table)] pairs, full-size parameters. *)

val by_id : string -> (?pool:Rv_engine.Pool.t -> unit -> Rv_util.Table.t) option
(** Look up one experiment by id ("A".."M", case-insensitive; "G" yields
    part (i), "G2" part (ii)). *)

val ids : string list

val kernels : (string * (unit -> unit)) list
(** Small fixed-size kernels for wall-clock benchmarking. *)

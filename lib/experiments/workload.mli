(** Shared workload machinery for the experiment harness (see the
    experiment index in DESIGN.md Section 5 and the per-experiment
    modules [Exp_a] … [Exp_h]). *)

val all_ones_label : space:int -> int
(** The label [<= space] whose binary representation has maximum weight —
    the worst case for Algorithm [Fast]'s cost. *)

val sample_pairs : space:int -> max_pairs:int -> (int * int) list
(** Distinct label pairs to sweep: deterministic adversarial picks (small
    labels, extreme labels, the all-ones label) plus seeded random pairs,
    capped at [max_pairs].  All pairs are returned when the space is small
    enough. *)

type dispatch = [ `Auto | `Fast | `Reference ]
(** Kernel selection for {!worst_for}: [`Reference] forces the
    round-by-round simulator ({!Rv_sim.Sim.run}); [`Fast] forces the
    trajectory path; [`Auto] (the default) probes the sweep's first
    configuration and picks whichever the measured cost model
    ({!Dispatch}) predicts is cheaper.  The choice never affects
    results — the paths are byte-equivalent — only how fast they
    arrive. *)

module Stats : sig
  type snapshot = {
    covered : int;
        (** configurations accounted for in the output stream (each
            orbit representative counts once per orbit member) *)
    simulated : int;  (** configurations actually evaluated (sum below) *)
    reference_cells : int;  (** evaluated by {!Rv_sim.Sim.run} *)
    traj_cells : int;  (** evaluated by {!Rv_sim.Traj.meet} *)
    interval_cells : int;  (** evaluated by {!Rv_sim.Traj.meet_intervals} *)
    sym_group : string;
        (** the last sweep's symmetry outcome: ["off"] (not attempted),
            ["none"] (no usable group), ["order-<k>/uncertified"] (group
            found, walk family failed certification), or ["order-<k>"]
            (reduction active) *)
    orbit_size : int;  (** coverage multiplier; 1 unless reduction ran *)
  }

  val snapshot : unit -> snapshot
  (** Process-wide counts since start or the last {!reset} (cell
      counters accumulate across sweeps; the sym fields describe the
      most recent {!worst_for} call). *)

  val reset : unit -> unit
end

val worst_for :
  ?model:Rv_sim.Sim.model ->
  ?dispatch:dispatch ->
  ?sym:bool ->
  ?pool:Rv_engine.Pool.t ->
  ?sink:Rv_engine.Sink.t ->
  ?progress:Rv_engine.Progress.t ->
  ?graph_spec:string ->
  g:Rv_graph.Port_graph.t ->
  algorithm:Rv_core.Rendezvous.algorithm ->
  space:int ->
  explorer:(start:int -> Rv_explore.Explorer.t) ->
  pairs:(int * int) list ->
  positions:Rv_sim.Adversary.position_space ->
  delays:(int * int) list ->
  unit ->
  (int * int, string) result
(** Worst [(time, cost)] over the cross product of label pairs, starting
    positions and delays.  [Error] on any failed rendezvous.

    {b Kernel dispatch.}  [dispatch] (default [`Auto]) selects between
    the reference simulator and the trajectory path, which materializes
    each agent walk once per worker domain ({!Rv_sim.Traj},
    {!Rv_sim.Traj_cache}) and turns every configuration into an array
    scan under a delay offset — {!Rv_sim.Traj.meet} for the waiting
    model, {!Rv_sim.Traj.meet_intervals} for the parachute model.
    Outcomes — including the byte stream written to [sink] — are
    identical on every path; deep-trace runs ({!Rv_obs.Obs.deep}) always
    use the reference simulator, and setting the [RV_NO_TRAJ]
    environment variable forces it globally (CI compares the byte
    streams).

    {b Symmetry reduction.}  When [positions] is [`All_pairs], [sym] is
    [true] (the default) and the [RV_NO_SYM] environment variable is
    unset, the sweep detects the graph's port-preserving automorphism
    group ({!Rv_graph.Symmetry}), certifies that every label's walk is
    equivariant under it (port-sequence comparison per automorphism —
    explorers that follow node identities rather than observations fail
    here and fall back to the unreduced sweep), and then evaluates only
    the canonical representative [(0, c)] of each position-pair orbit —
    [1/orbit_size] of the space — replaying the full configuration
    stream through the representative table.  The output — worst cell
    and every sink byte — is identical to the unreduced sweep (CI
    byte-compares against [RV_NO_SYM=1]); the only observable difference
    is eagerness: a failing pair's representatives are all evaluated
    even though the replayed stream stops at the failure.
    [`Fixed_first] is never reduced — under a free transitive action it
    is already an orbit transversal of the [(0, i)] pairs.

    [pool] parallelizes over label pairs (one task per pair; under
    reduction, deterministic per-pair subtasks via
    {!Rv_engine.Sweep.map_nested}); results — including the byte stream
    written to [sink] — are bit-for-bit identical to the sequential run
    because outcomes are merged in pair order on the calling domain (see
    {!Rv_engine.Sweep}).  [sink] receives one {!Rv_engine.Record.t} per
    covered configuration, tagged with [graph_spec] (default:
    ["n=<nodes>"]).  [progress] counters: one {!Rv_engine.Progress.tick}
    per pair, one [observe] per meeting.  Cell counts, cache traffic and
    the symmetry outcome are reported through {!Stats} and
    {!Rv_sim.Traj_cache.stats}. *)

val ring_delays : e:int -> (int * int) list
(** The adversarial delay set used by the delay-tolerant experiments:
    0, 1, [E/2], [E], [E+1] in both orders. *)

val e_of : (start:int -> Rv_explore.Explorer.t) -> int
(** The declared bound of the supplied explorer family (queried at
    [start:0]). *)

(** Shared workload machinery for the experiment harness (see the
    experiment index in DESIGN.md Section 5 and the per-experiment
    modules [Exp_a] … [Exp_h]). *)

val all_ones_label : space:int -> int
(** The label [<= space] whose binary representation has maximum weight —
    the worst case for Algorithm [Fast]'s cost. *)

val sample_pairs : space:int -> max_pairs:int -> (int * int) list
(** Distinct label pairs to sweep: deterministic adversarial picks (small
    labels, extreme labels, the all-ones label) plus seeded random pairs,
    capped at [max_pairs].  All pairs are returned when the space is small
    enough. *)

val worst_for :
  ?model:Rv_sim.Sim.model ->
  ?fast:bool ->
  ?pool:Rv_engine.Pool.t ->
  ?sink:Rv_engine.Sink.t ->
  ?progress:Rv_engine.Progress.t ->
  ?graph_spec:string ->
  g:Rv_graph.Port_graph.t ->
  algorithm:Rv_core.Rendezvous.algorithm ->
  space:int ->
  explorer:(start:int -> Rv_explore.Explorer.t) ->
  pairs:(int * int) list ->
  positions:Rv_sim.Adversary.position_space ->
  delays:(int * int) list ->
  unit ->
  (int * int, string) result
(** Worst [(time, cost)] over the cross product of label pairs, starting
    positions and delays.  [Error] on any failed rendezvous.

    [fast] (default [true]) serves waiting-model sweeps from the
    trajectory cache: each agent walk (a pure function of algorithm,
    label and start) is materialized once per worker domain
    ({!Rv_sim.Traj}, {!Rv_sim.Traj_cache}) and every configuration
    becomes an array scan under a delay offset instead of a full
    {!Rv_sim.Sim.run}.  Outcomes — including the byte stream written to
    [sink] — are identical to the reference path; the parachute model
    and deep-trace runs ({!Rv_obs.Obs.deep}) always use the reference
    simulator, and setting the [RV_NO_TRAJ] environment variable forces
    it globally (CI compares the two byte streams).

    [pool] parallelizes over label pairs (one task per pair, dynamic
    chunk scheduling); results — including the byte stream written to
    [sink] — are bit-for-bit identical to the sequential run because the
    per-pair outcomes are merged in pair order on the calling domain (see
    {!Rv_engine.Sweep}).  [sink] receives one {!Rv_engine.Record.t} per
    simulated configuration, tagged with [graph_spec] (default:
    ["n=<nodes>"]).  [progress] counters are updated live from worker
    domains: one {!Rv_engine.Progress.tick} per pair, one
    [observe] per meeting. *)

val ring_delays : e:int -> (int * int) list
(** The adversarial delay set used by the delay-tolerant experiments:
    0, 1, [E/2], [E], [E+1] in both orders. *)

val e_of : (start:int -> Rv_explore.Explorer.t) -> int
(** The declared bound of the supplied explorer family (queried at
    [start:0]). *)

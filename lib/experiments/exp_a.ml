module R = Rv_core.Rendezvous
module Table = Rv_util.Table

let algorithms = [ R.Cheap; R.Fast; R.Fwr 2; R.Fwr 3 ]

let row ?pool ~g ~n ~space algorithm =
  let e = n - 1 in
  let explorer ~start =
    ignore start;
    Rv_explore.Ring_walk.clockwise ~n
  in
  let pairs = Workload.sample_pairs ~space ~max_pairs:10 in
  let delays = Workload.ring_delays ~e in
  match
    Workload.worst_for ?pool ~g ~algorithm ~space ~explorer ~pairs ~positions:`Fixed_first
      ~delays ()
  with
  | Error msg -> [ R.name algorithm; string_of_int space; "FAIL: " ^ msg; "-"; "-"; "-"; "-"; "-" ]
  | Ok (t, c) ->
      let tb = R.proven_time_bound algorithm ~e ~space in
      let cb = R.proven_cost_bound algorithm ~e ~space in
      [
        R.name algorithm;
        string_of_int space;
        string_of_int t;
        string_of_int tb;
        Table.cell_ratio (float_of_int t) (float_of_int tb);
        string_of_int c;
        string_of_int cb;
        Table.cell_ratio (float_of_int c) (float_of_int cb);
      ]

let table ?pool ?(n = 24) ?(spaces = [ 4; 16; 64 ]) () =
  let g = Rv_graph.Ring.oriented n in
  let rows =
    List.concat_map (fun space -> List.map (row ?pool ~g ~n ~space) algorithms) spaces
  in
  Table.make
    ~title:
      (Printf.sprintf
         "EXP-A: worst-case time/cost vs proven bounds (oriented ring n=%d, E=%d)" n
         (n - 1))
    ~headers:[ "algorithm"; "L"; "time"; "time bound"; "t/bound"; "cost"; "cost bound"; "c/bound" ]
    ~notes:
      [
        "Worst over sampled label pairs, all start gaps, delays {0,1,E/2,E,E+1} both orders.";
        "Shape check: cheap cost stays O(E) while time grows with L; fast time and cost grow with log L.";
      ]
    rows

let bench_kernel () =
  let n = 12 in
  let g = Rv_graph.Ring.oriented n in
  match row ~g ~n ~space:8 R.Fast with
  | _ :: _ -> ()
  | [] -> assert false

module R = Rv_core.Rendezvous
module Adv = Rv_sim.Adversary
module Rng = Rv_util.Rng
module Engine_sweep = Rv_engine.Sweep
module Sink = Rv_engine.Sink
module Progress = Rv_engine.Progress

let all_ones_label ~space =
  let rec grow candidate =
    let next = (candidate * 2) + 1 in
    if next <= space then grow next else candidate
  in
  grow 1

module Int_set = Set.Make (Int)

(* Label pairs 1 <= a < b <= space in bijection with triangular indices
   0 .. space(space-1)/2 - 1: the pairs with second coordinate [b]
   occupy indices T(b-2) .. T(b-1) - 1, where T(k) = k(k+1)/2. *)
let index_of_pair (a, b) = ((b - 1) * (b - 2) / 2) + (a - 1)

let pair_of_index i =
  (* Largest k with T(k) <= i, via a float sqrt corrected by stepping. *)
  let k =
    ref (int_of_float ((sqrt ((8. *. float_of_int i) +. 1.) -. 1.) /. 2.))
  in
  if !k < 0 then k := 0;
  while (!k + 1) * (!k + 2) / 2 <= i do
    incr k
  done;
  while !k * (!k + 1) / 2 > i do
    decr k
  done;
  (i - (!k * (!k + 1) / 2) + 1, !k + 2)

let sample_pairs ~space ~max_pairs =
  (* The number of pairs a < b is known arithmetically; never materialize
     the O(space^2) cross product just to count it. *)
  let total = space * (space - 1) / 2 in
  if total <= max_pairs then
    List.concat_map
      (fun a ->
        List.filter_map (fun b -> if a < b then Some (a, b) else None)
          (List.init space (fun b -> b + 1)))
      (List.init space (fun a -> a + 1))
  else begin
    let ones = all_ones_label ~space in
    let seeds =
      [
        (1, 2);
        (1, space);
        (space - 1, space);
        (min ones (space - 1), space);
        (1, ones);
        (2, 3);
        (space / 2, (space / 2) + 1);
      ]
    in
    let seeds =
      List.filter (fun (a, b) -> a >= 1 && b <= space && a < b) seeds
      |> List.sort_uniq Rv_util.Ord.(pair int int)
    in
    let seeds = List.filteri (fun i _ -> i < max_pairs) seeds in
    (* Draw the remaining pairs as distinct triangular indices in the
       complement of the seeds, with Floyd's algorithm: exactly [need]
       draws, no rejection loop, so the cost is bounded even when
       [max_pairs] approaches [total].  Membership goes through an
       Ord-keyed set, not a polymorphic-hash table. *)
    let seed_idx = List.sort Rv_util.Ord.int (List.map index_of_pair seeds) in
    let need = max_pairs - List.length seeds in
    let m = total - List.length seeds in
    let rng = Rng.create ~seed:0xA11 in
    let chosen = ref Int_set.empty and order = ref [] in
    for j = m - need to m - 1 do
      let t = Rng.int rng (j + 1) in
      let v = if Int_set.mem t !chosen then j else t in
      chosen := Int_set.add v !chosen;
      order := v :: !order
    done;
    (* Lift an index from [0, total - #seeds) into [0, total) minus the
       seed indices. *)
    let lift v = List.fold_left (fun v s -> if s <= v then v + 1 else v) v seed_idx in
    seeds @ List.rev_map (fun v -> pair_of_index (lift v)) !order
  end

let expand_positions ~g = function
  | `Pairs l -> l
  | `Fixed_first -> List.init (Rv_graph.Port_graph.n g - 1) (fun i -> (0, i + 1))
  | `All_pairs ->
      let n = Rv_graph.Port_graph.n g in
      List.concat_map
        (fun a ->
          List.filter_map (fun b -> if a <> b then Some (a, b) else None)
            (List.init n (fun b -> b)))
        (List.init n (fun a -> a))

let worst_for ?model ?(fast = true) ?pool ?sink ?progress ?graph_spec ~g ~algorithm
    ~space ~explorer ~pairs ~positions ~delays () =
  (* Positions vary inside the sweep, and map-based explorers need the
     true start, so expand the position space here instead of going
     through [Adversary.sweep], whose factories are blind to starts. *)
  let expand = expand_positions ~g positions in
  let graph_spec =
    match graph_spec with
    | Some s -> s
    | None -> Printf.sprintf "n=%d" (Rv_graph.Port_graph.n g)
  in
  let algo_name = R.name algorithm in
  (* Fast path: in the waiting model an agent's walk is a pure function
     of (algorithm, label, start), so materialize each walk once
     (Rv_sim.Traj) and find meetings by scanning the arrays under each
     delay offset, instead of re-running the round-by-round simulator
     per configuration.  Trajectories are memoized per domain
     (Rv_sim.Traj_cache), so a label's walk is reused across every
     partner, position and delay its tasks touch.  The parachute model
     (presence depends on the wake round — no purity) and deep-trace
     runs (per-phase spans need the live simulator) keep the reference
     path, as does RV_NO_TRAJ=1 or [~fast:false]. *)
  let use_fast =
    fast
    && (match model with None | Some Rv_sim.Sim.Waiting -> true | Some Rv_sim.Sim.Parachute -> false)
    && Sys.getenv_opt "RV_NO_TRAJ" = None
    && not (Rv_obs.Obs.deep ())
  in
  (* The reference path checks per run that both agents' explorers
     declare the same bound E (Rendezvous.run); replicate the check up
     front, once per position pair — explorer construction is a closure
     allocation, the walks themselves are computed lazily. *)
  if use_fast then
    List.iter
      (fun (pa, pb) ->
        let ba = (explorer ~start:pa).Rv_explore.Explorer.bound in
        let bb = (explorer ~start:pb).Rv_explore.Explorer.bound in
        if ba <> bb then
          invalid_arg "Rendezvous.run: the two agents' explorers declare different bounds E")
      expand;
  let cache =
    if not use_fast then None
    else
      Some
        (Rv_sim.Traj_cache.create
           ~build:(fun ~label ~start ->
             let ex = explorer ~start in
             let sched = R.schedule algorithm ~space ~label ~explorer:ex in
             Rv_sim.Traj.of_blocks ~g ~start
               (List.map
                  (function
                    | Rv_core.Schedule.Pause k -> Rv_sim.Traj.Still k
                    | Rv_core.Schedule.Explore e ->
                        Rv_sim.Traj.Run (e.Rv_explore.Explorer.fresh (), e.Rv_explore.Explorer.bound))
                  sched))
           ())
  in
  (* Simulate one configuration; returns the outcome fields the sweep
     consumes.  Both paths agree exactly (property-tested in
     test/test_traj.ml, re-asserted at bench time and by CI's
     RV_NO_TRAJ byte comparison). *)
  let simulate ~la ~lb ~pa ~pb ~da ~db =
    match cache with
    | Some cache ->
        if la = lb then invalid_arg "Rendezvous.run: labels must be distinct";
        let ta = Rv_sim.Traj_cache.get cache ~label:la ~start:pa in
        let tb = Rv_sim.Traj_cache.get cache ~label:lb ~start:pb in
        let max_rounds =
          max (ta.Rv_sim.Traj.rounds + da) (tb.Rv_sim.Traj.rounds + db) + 1
        in
        let m = Rv_sim.Traj.meet ~a:ta ~b:tb ~delay_a:da ~delay_b:db ~max_rounds in
        (m.Rv_sim.Traj.meeting_round, m.Rv_sim.Traj.cost, m.Rv_sim.Traj.rounds_run)
    | None ->
        let out =
          R.run ?model ~g ~explorer ~algorithm ~space
            { R.label = la; start = pa; delay = da }
            { R.label = lb; start = pb; delay = db }
        in
        (out.Rv_sim.Sim.meeting_round, out.Rv_sim.Sim.cost, out.Rv_sim.Sim.rounds_run)
  in
  (* One task per label pair.  A task touches nothing shared: graphs are
     immutable, explorer state is created fresh per simulation (and the
     trajectory cache is domain-local), and the task's records are
     buffered locally and emitted by the caller during the in-order
     merge — so the sink's byte stream is identical for any pool size. *)
  let obs = Rv_obs.Obs.enabled () in
  let run_pair (la, lb) =
    if obs then
      Rv_obs.Obs.begin_span ~cat:"workload"
        ~args:[ ("la", Rv_obs.Json.Int la); ("lb", Rv_obs.Json.Int lb) ]
        "workload.pair";
    let worst_t = ref 0 and worst_c = ref 0 in
    let failure = ref None in
    let recorded = ref [] in
    List.iter
      (fun (pa, pb) ->
        List.iter
          (fun (da, db) ->
            if !failure = None then begin
              let meeting_round, cost, rounds_run = simulate ~la ~lb ~pa ~pb ~da ~db in
              (match sink with
              | None -> ()
              | Some _ ->
                  let met = meeting_round <> None in
                  recorded :=
                    {
                      Rv_engine.Record.graph = graph_spec;
                      algorithm = algo_name;
                      label_a = la;
                      label_b = lb;
                      start_a = pa;
                      start_b = pb;
                      delay_a = da;
                      delay_b = db;
                      met;
                      time = (match meeting_round with Some t -> t | None -> rounds_run);
                      cost;
                    }
                    :: !recorded);
              match meeting_round with
              | Some t ->
                  worst_t := max !worst_t t;
                  worst_c := max !worst_c cost;
                  Option.iter (fun p -> Progress.observe p ~time:t ~cost) progress
              | None ->
                  failure :=
                    Some
                      (Printf.sprintf
                         "%s: no rendezvous (labels %d/%d, starts %d/%d, delays %d/%d)"
                         algo_name la lb pa pb da db)
            end)
          delays)
      expand;
    Option.iter Progress.tick progress;
    if obs then begin
      Rv_obs.Counter.count "workload.pairs" 1;
      Rv_obs.Obs.end_span ()
    end;
    let result =
      match !failure with None -> Ok (!worst_t, !worst_c) | Some e -> Error e
    in
    (result, List.rev !recorded)
  in
  let pair_arr = Array.of_list pairs in
  let outcomes =
    Engine_sweep.map_array ?pool ~chunk:1 (Array.length pair_arr) (fun i ->
        run_pair pair_arr.(i))
  in
  Array.fold_left
    (fun acc (result, recorded) ->
      Option.iter (fun s -> List.iter (Sink.emit s) recorded) sink;
      match (acc, result) with
      | Error _, _ -> acc
      | Ok _, Error e -> Error e
      | Ok (at, ac), Ok (t, c) -> Ok (max at t, max ac c))
    (Ok (0, 0)) outcomes

let ring_delays ~e =
  let ds = List.sort_uniq Int.compare [ 0; 1; e / 2; e; e + 1 ] in
  List.map (fun d -> (0, d)) ds @ List.filter_map (fun d -> if d > 0 then Some (d, 0) else None) ds

let e_of explorer = (explorer ~start:0).Rv_explore.Explorer.bound

module R = Rv_core.Rendezvous
module Adv = Rv_sim.Adversary
module Rng = Rv_util.Rng
module Engine_sweep = Rv_engine.Sweep
module Sink = Rv_engine.Sink
module Progress = Rv_engine.Progress

let all_ones_label ~space =
  let rec grow candidate =
    let next = (candidate * 2) + 1 in
    if next <= space then grow next else candidate
  in
  grow 1

let sample_pairs ~space ~max_pairs =
  (* The number of pairs a < b is known arithmetically; never materialize
     the O(space^2) cross product just to count it. *)
  let total = space * (space - 1) / 2 in
  if total <= max_pairs then
    List.concat_map
      (fun a ->
        List.filter_map (fun b -> if a < b then Some (a, b) else None)
          (List.init space (fun b -> b + 1)))
      (List.init space (fun a -> a + 1))
  else begin
    let ones = all_ones_label ~space in
    let seeds =
      [
        (1, 2);
        (1, space);
        (space - 1, space);
        (min ones (space - 1), space);
        (1, ones);
        (2, 3);
        (space / 2, (space / 2) + 1);
      ]
    in
    let seeds =
      List.filter (fun (a, b) -> a >= 1 && b <= space && a < b) seeds
      |> List.sort_uniq Rv_util.Ord.(pair int int)
    in
    let seen = Hashtbl.create (4 * max_pairs) in
    List.iter (fun p -> Hashtbl.replace seen p ()) seeds;
    let rng = Rng.create ~seed:0xA11 in
    let extra = ref [] and count = ref (List.length seeds) in
    while !count < max_pairs do
      let a = 1 + Rng.int rng space and b = 1 + Rng.int rng space in
      if a < b && not (Hashtbl.mem seen (a, b)) then begin
        Hashtbl.replace seen (a, b) ();
        extra := (a, b) :: !extra;
        incr count
      end
    done;
    seeds @ List.rev !extra
  end

let expand_positions ~g = function
  | `Pairs l -> l
  | `Fixed_first -> List.init (Rv_graph.Port_graph.n g - 1) (fun i -> (0, i + 1))
  | `All_pairs ->
      let n = Rv_graph.Port_graph.n g in
      List.concat_map
        (fun a ->
          List.filter_map (fun b -> if a <> b then Some (a, b) else None)
            (List.init n (fun b -> b)))
        (List.init n (fun a -> a))

let worst_for ?model ?pool ?sink ?progress ?graph_spec ~g ~algorithm ~space ~explorer
    ~pairs ~positions ~delays () =
  (* Positions vary inside the sweep, and map-based explorers need the
     true start, so expand the position space here instead of going
     through [Adversary.sweep], whose factories are blind to starts. *)
  let expand = expand_positions ~g positions in
  let graph_spec =
    match graph_spec with
    | Some s -> s
    | None -> Printf.sprintf "n=%d" (Rv_graph.Port_graph.n g)
  in
  let algo_name = R.name algorithm in
  (* One task per label pair.  A task touches nothing shared: graphs are
     immutable, explorer state is created fresh inside [R.run], and the
     task's records are buffered locally and emitted by the caller during
     the in-order merge — so the sink's byte stream is identical for any
     pool size. *)
  let obs = Rv_obs.Obs.enabled () in
  let run_pair (la, lb) =
    if obs then
      Rv_obs.Obs.begin_span ~cat:"workload"
        ~args:[ ("la", Rv_obs.Json.Int la); ("lb", Rv_obs.Json.Int lb) ]
        "workload.pair";
    let worst_t = ref 0 and worst_c = ref 0 in
    let failure = ref None in
    let recorded = ref [] in
    List.iter
      (fun (pa, pb) ->
        List.iter
          (fun (da, db) ->
            if !failure = None then begin
              let out =
                R.run ?model ~g ~explorer ~algorithm ~space
                  { R.label = la; start = pa; delay = da }
                  { R.label = lb; start = pb; delay = db }
              in
              (match sink with
              | None -> ()
              | Some _ ->
                  let met = out.Rv_sim.Sim.meeting_round <> None in
                  recorded :=
                    {
                      Rv_engine.Record.graph = graph_spec;
                      algorithm = algo_name;
                      label_a = la;
                      label_b = lb;
                      start_a = pa;
                      start_b = pb;
                      delay_a = da;
                      delay_b = db;
                      met;
                      time =
                        (match out.Rv_sim.Sim.meeting_round with
                        | Some t -> t
                        | None -> out.Rv_sim.Sim.rounds_run);
                      cost = out.Rv_sim.Sim.cost;
                    }
                    :: !recorded);
              match out.Rv_sim.Sim.meeting_round with
              | Some t ->
                  worst_t := max !worst_t t;
                  worst_c := max !worst_c out.Rv_sim.Sim.cost;
                  Option.iter
                    (fun p -> Progress.observe p ~time:t ~cost:out.Rv_sim.Sim.cost)
                    progress
              | None ->
                  failure :=
                    Some
                      (Printf.sprintf
                         "%s: no rendezvous (labels %d/%d, starts %d/%d, delays %d/%d)"
                         algo_name la lb pa pb da db)
            end)
          delays)
      expand;
    Option.iter Progress.tick progress;
    if obs then begin
      Rv_obs.Counter.count "workload.pairs" 1;
      Rv_obs.Obs.end_span ()
    end;
    let result =
      match !failure with None -> Ok (!worst_t, !worst_c) | Some e -> Error e
    in
    (result, List.rev !recorded)
  in
  let pair_arr = Array.of_list pairs in
  let outcomes =
    Engine_sweep.map_array ?pool ~chunk:1 (Array.length pair_arr) (fun i ->
        run_pair pair_arr.(i))
  in
  Array.fold_left
    (fun acc (result, recorded) ->
      Option.iter (fun s -> List.iter (Sink.emit s) recorded) sink;
      match (acc, result) with
      | Error _, _ -> acc
      | Ok _, Error e -> Error e
      | Ok (at, ac), Ok (t, c) -> Ok (max at t, max ac c))
    (Ok (0, 0)) outcomes

let ring_delays ~e =
  let ds = List.sort_uniq Int.compare [ 0; 1; e / 2; e; e + 1 ] in
  List.map (fun d -> (0, d)) ds @ List.filter_map (fun d -> if d > 0 then Some (d, 0) else None) ds

let e_of explorer = (explorer ~start:0).Rv_explore.Explorer.bound

module R = Rv_core.Rendezvous
module Adv = Rv_sim.Adversary
module Rng = Rv_util.Rng
module Pg = Rv_graph.Port_graph
module Sym = Rv_graph.Symmetry
module Engine_sweep = Rv_engine.Sweep
module Sink = Rv_engine.Sink
module Progress = Rv_engine.Progress

let all_ones_label ~space =
  let rec grow candidate =
    let next = (candidate * 2) + 1 in
    if next <= space then grow next else candidate
  in
  grow 1

module Int_set = Set.Make (Int)

(* Label pairs 1 <= a < b <= space in bijection with triangular indices
   0 .. space(space-1)/2 - 1: the pairs with second coordinate [b]
   occupy indices T(b-2) .. T(b-1) - 1, where T(k) = k(k+1)/2. *)
let index_of_pair (a, b) = ((b - 1) * (b - 2) / 2) + (a - 1)

let pair_of_index i =
  (* Largest k with T(k) <= i, via a float sqrt corrected by stepping. *)
  let k =
    ref (int_of_float ((sqrt ((8. *. float_of_int i) +. 1.) -. 1.) /. 2.))
  in
  if !k < 0 then k := 0;
  while (!k + 1) * (!k + 2) / 2 <= i do
    incr k
  done;
  while !k * (!k + 1) / 2 > i do
    decr k
  done;
  (i - (!k * (!k + 1) / 2) + 1, !k + 2)

let sample_pairs ~space ~max_pairs =
  (* The number of pairs a < b is known arithmetically; never materialize
     the O(space^2) cross product just to count it. *)
  let total = space * (space - 1) / 2 in
  if total <= max_pairs then
    List.concat_map
      (fun a ->
        List.filter_map (fun b -> if a < b then Some (a, b) else None)
          (List.init space (fun b -> b + 1)))
      (List.init space (fun a -> a + 1))
  else begin
    let ones = all_ones_label ~space in
    let seeds =
      [
        (1, 2);
        (1, space);
        (space - 1, space);
        (min ones (space - 1), space);
        (1, ones);
        (2, 3);
        (space / 2, (space / 2) + 1);
      ]
    in
    let seeds =
      List.filter (fun (a, b) -> a >= 1 && b <= space && a < b) seeds
      |> List.sort_uniq Rv_util.Ord.(pair int int)
    in
    let seeds = List.filteri (fun i _ -> i < max_pairs) seeds in
    (* Draw the remaining pairs as distinct triangular indices in the
       complement of the seeds, with Floyd's algorithm: exactly [need]
       draws, no rejection loop, so the cost is bounded even when
       [max_pairs] approaches [total].  Membership goes through an
       Ord-keyed set, not a polymorphic-hash table. *)
    let seed_idx = List.sort Rv_util.Ord.int (List.map index_of_pair seeds) in
    let need = max_pairs - List.length seeds in
    let m = total - List.length seeds in
    let rng = Rng.create ~seed:0xA11 in
    let chosen = ref Int_set.empty and order = ref [] in
    for j = m - need to m - 1 do
      let t = Rng.int rng (j + 1) in
      let v = if Int_set.mem t !chosen then j else t in
      chosen := Int_set.add v !chosen;
      order := v :: !order
    done;
    (* Lift an index from [0, total - #seeds) into [0, total) minus the
       seed indices. *)
    let lift v = List.fold_left (fun v s -> if s <= v then v + 1 else v) v seed_idx in
    seeds @ List.rev_map (fun v -> pair_of_index (lift v)) !order
  end

let expand_positions ~g = function
  | `Pairs l -> l
  | `Fixed_first -> List.init (Pg.n g - 1) (fun i -> (0, i + 1))
  | `All_pairs ->
      let n = Pg.n g in
      List.concat_map
        (fun a ->
          List.filter_map (fun b -> if a <> b then Some (a, b) else None)
            (List.init n (fun b -> b)))
        (List.init n (fun a -> a))

type dispatch = [ `Auto | `Fast | `Reference ]

(* --- sweep accounting -------------------------------------------------- *)

module Stats = struct
  type snapshot = {
    covered : int;
    simulated : int;
    reference_cells : int;
    traj_cells : int;
    interval_cells : int;
    sym_group : string;
    orbit_size : int;
  }

  let covered = Atomic.make 0

  let reference_cells = Atomic.make 0

  let traj_cells = Atomic.make 0

  let interval_cells = Atomic.make 0

  let sym_group = Atomic.make "off"

  let orbit = Atomic.make 1

  let snapshot () =
    let reference_cells = Atomic.get reference_cells in
    let traj_cells = Atomic.get traj_cells in
    let interval_cells = Atomic.get interval_cells in
    {
      covered = Atomic.get covered;
      simulated = reference_cells + traj_cells + interval_cells;
      reference_cells;
      traj_cells;
      interval_cells;
      sym_group = Atomic.get sym_group;
      orbit_size = Atomic.get orbit;
    }

  let reset () =
    Atomic.set covered 0;
    Atomic.set reference_cells 0;
    Atomic.set traj_cells 0;
    Atomic.set interval_cells 0;
    Atomic.set sym_group "off";
    Atomic.set orbit 1
end

(* Per-task cell counts, flushed to the process-wide atomics once per
   task — the hot loop never touches shared state. *)
type tally = { mutable ref_c : int; mutable traj_c : int; mutable intv_c : int }

let flush_tally t =
  if t.ref_c > 0 then ignore (Atomic.fetch_and_add Stats.reference_cells t.ref_c);
  if t.traj_c > 0 then ignore (Atomic.fetch_and_add Stats.traj_cells t.traj_c);
  if t.intv_c > 0 then ignore (Atomic.fetch_and_add Stats.interval_cells t.intv_c)

(* Walk-family equivariance: two trajectories of the same label from
   automorphism-related starts are images of each other iff they take
   the same port sequence (by induction, port preservation then forces
   [pos'(r) = phi (pos r)] — see DESIGN.md §3.6).  Integer arrays, no
   polymorphic compare. *)
let same_ports (t0 : Rv_sim.Traj.t) (t1 : Rv_sim.Traj.t) =
  t0.Rv_sim.Traj.rounds = t1.Rv_sim.Traj.rounds
  && t0.Rv_sim.Traj.first_move = t1.Rv_sim.Traj.first_move
  &&
  let ok = ref true and r = ref 0 in
  let p0 = t0.Rv_sim.Traj.port and p1 = t1.Rv_sim.Traj.port in
  while !ok && !r <= t0.Rv_sim.Traj.rounds do
    if Array.unsafe_get p0 !r <> Array.unsafe_get p1 !r then ok := false;
    incr r
  done;
  !ok

let worst_for ?model ?(dispatch = `Auto) ?(sym = true) ?pool ?sink ?progress
    ?graph_spec ~g ~algorithm ~space ~explorer ~pairs ~positions ~delays () =
  (* Positions vary inside the sweep, and map-based explorers need the
     true start, so expand the position space here instead of going
     through [Adversary.sweep], whose factories are blind to starts. *)
  let expand = expand_positions ~g positions in
  let graph_spec =
    match graph_spec with
    | Some s -> s
    | None -> Printf.sprintf "n=%d" (Pg.n g)
  in
  let algo_name = R.name algorithm in
  let n = Pg.n g in
  let model_v = match model with None -> Rv_sim.Sim.Waiting | Some m -> m in
  let non_empty = function [] -> false | _ :: _ -> true in
  let have_work = non_empty pairs && non_empty expand && non_empty delays in
  (* Trajectory-path eligibility.  Deep-trace runs (per-phase spans need
     the live simulator) keep the reference path, as does RV_NO_TRAJ=1
     or [~dispatch:`Reference].  The parachute model is served by
     Traj.meet_intervals — walks are model-independent, presence only
     gates detection — so it is no longer excluded. *)
  let traj_allowed =
    (match dispatch with `Reference -> false | `Fast | `Auto -> true)
    && Sys.getenv_opt "RV_NO_TRAJ" = None
    && not (Rv_obs.Obs.deep ())
  in
  let build_traj ~label ~start =
    let ex = explorer ~start in
    let sched = R.schedule algorithm ~space ~label ~explorer:ex in
    Rv_sim.Traj.of_blocks ~g ~start
      (List.map
         (function
           | Rv_core.Schedule.Pause k -> Rv_sim.Traj.Still k
           | Rv_core.Schedule.Explore e ->
               Rv_sim.Traj.Run
                 (e.Rv_explore.Explorer.fresh (), e.Rv_explore.Explorer.bound))
         sched)
  in
  (* --- symmetry reduction ---------------------------------------------
     Only the full ordered-pair space can be quotiented (Fixed_first is
     already a rotation transversal; explicit pair lists carry caller
     intent).  The group is detected from scratch with checked witnesses
     (Rv_graph.Symmetry), and the walk family is then certified
     equivariant label by label — an explorer like a global Hamiltonian
     walk follows node identities, not observations, and silently breaks
     orbit invariance, so certification failure falls back to the
     unreduced sweep rather than trusting the graph alone. *)
  let sym_wanted =
    sym
    && Sys.getenv_opt "RV_NO_SYM" = None
    && (match positions with `All_pairs -> true | `Fixed_first | `Pairs _ -> false)
    && have_work
  in
  let symq =
    if not sym_wanted then None
    else
      let s = Sym.detect g in
      if not (Sym.reducible s) then begin
        Atomic.set Stats.sym_group "none";
        Atomic.set Stats.orbit 1;
        None
      end
      else begin
        let labels =
          List.sort_uniq Int.compare (List.concat_map (fun (a, b) -> [ a; b ]) pairs)
        in
        let autos = Sym.automorphisms s in
        let certified =
          List.for_all
            (fun label ->
              let t0 = build_traj ~label ~start:0 in
              let ok = ref true and i = ref 1 in
              while !ok && !i < Array.length autos do
                if not (same_ports t0 (build_traj ~label ~start:autos.(!i).(0))) then
                  ok := false;
                incr i
              done;
              !ok)
            labels
        in
        if certified then begin
          Atomic.set Stats.sym_group (Sym.group_name s);
          Atomic.set Stats.orbit (Sym.orbit_size s);
          Some s
        end
        else begin
          Atomic.set Stats.sym_group (Sym.group_name s ^ "/uncertified");
          Atomic.set Stats.orbit 1;
          None
        end
      end
  in
  if not sym_wanted then begin
    Atomic.set Stats.sym_group "off";
    Atomic.set Stats.orbit 1
  end;
  (* Representative cells per label pair: under a certified reduction the
     canonical pairs are exactly (0, c) for c in 1..n-1 (free transitive
     action), 1/orbit of the full ordered-pair space. *)
  let reps_per_pair =
    match symq with Some _ -> n - 1 | None -> List.length expand
  in
  (* --- adaptive dispatch ----------------------------------------------
     `Auto probes the sweep's first configuration through the reference
     simulator and feeds the measured cost model (Dispatch): builds plus
     scans versus simulations.  The probe's outcome is reused as that
     configuration's result — both paths agree exactly — so probing does
     no duplicate work. *)
  let configs = List.length pairs * reps_per_pair * List.length delays in
  let probes =
    match (dispatch, have_work) with
    | `Auto, true when traj_allowed && configs >= Dispatch.small_sweep_configs
      -> (
        match (pairs, expand, delays) with
        | (la, lb) :: _, (pa, pb) :: _, (da, db) :: _ ->
            let run_one (da, db) =
              let out =
                R.run ?model ~g ~explorer ~algorithm ~space
                  { R.label = la; start = pa; delay = da }
                  { R.label = lb; start = pb; delay = db }
              in
              ( (la, lb, pa, pb, da, db),
                (out.Rv_sim.Sim.meeting_round, out.Rv_sim.Sim.cost,
                 out.Rv_sim.Sim.rounds_run) )
            in
            (* Two-point probe: the first delay pair and the last one.
               Delay lists put the adversarial offsets at the end, so a
               single first-config probe (which usually meets almost
               immediately) would undersell the reference simulator's
               cost across the sweep and flip near-pivot decisions on
               calibration noise.  Both outcomes are reused as those
               configurations' results, so the extra probe does no
               duplicate work either. *)
            let last = List.nth delays (List.length delays - 1) in
            if last = (da, db) then [ run_one (da, db) ]
            else [ run_one (da, db); run_one last ]
        | _ -> [])
    | _ -> []
  in
  let use_fast =
    traj_allowed
    &&
    match dispatch with
    | `Fast -> true
    | `Reference -> false
    | `Auto -> (
        match probes with
        | [] -> false
        | probes ->
            let uniq side xs = List.sort_uniq Int.compare (List.map side xs) in
            let labels_a = uniq fst pairs and labels_b = uniq snd pairs in
            let starts_a, starts_b =
              match symq with
              | Some _ -> (1, n - 1)
              | None ->
                  (List.length (uniq fst expand), List.length (uniq snd expand))
            in
            (* Building a trajectory only pays per *active* round:
               of_blocks materializes Pause segments with Array.fill, so
               a label-scaled waiting schedule costs its Explore rounds
               (the traversal budget), not its duration. *)
            let active_of label =
              Rv_core.Schedule.traversal_budget
                (R.schedule algorithm ~space ~label ~explorer:(explorer ~start:0))
            in
            let sum ls = List.fold_left (fun acc l -> acc + active_of l) 0 ls in
            let build_rounds = (sum labels_a * starts_a) + (sum labels_b * starts_b) in
            let probe_rounds =
              let total =
                List.fold_left (fun acc (_, (_, _, r)) -> acc + r) 0 probes
              in
              (total + List.length probes - 1) / List.length probes
            in
            Dispatch.use_traj { Dispatch.configs; build_rounds; probe_rounds })
  in
  (* The reference path checks per run that both agents' explorers
     declare the same bound E (Rendezvous.run); replicate the check up
     front, once per position pair — explorer construction is a closure
     allocation, the walks themselves are computed lazily. *)
  if use_fast then
    List.iter
      (fun (pa, pb) ->
        let ba = (explorer ~start:pa).Rv_explore.Explorer.bound in
        let bb = (explorer ~start:pb).Rv_explore.Explorer.bound in
        if ba <> bb then
          invalid_arg "Rendezvous.run: the two agents' explorers declare different bounds E")
      expand;
  let cache =
    if not use_fast then None
    else Some (Rv_sim.Traj_cache.create ~build:build_traj ())
  in
  (* Simulate one configuration; returns the outcome fields the sweep
     consumes.  All paths agree exactly (property-tested in
     test/test_traj.ml for both models, re-asserted at bench time and by
     CI's RV_NO_TRAJ / RV_NO_SYM byte comparisons). *)
  let simulate tally ~la ~lb ~pa ~pb ~da ~db =
    let reused =
      List.find_opt
        (fun ((pla, plb, ppa, ppb, pda, pdb), _) ->
          la = pla && lb = plb && pa = ppa && pb = ppb && da = pda && db = pdb)
        probes
    in
    match reused with
    | Some (_, out) ->
        tally.ref_c <- tally.ref_c + 1;
        out
    | None -> (
        match cache with
        | Some cache ->
            if la = lb then invalid_arg "Rendezvous.run: labels must be distinct";
            let ta = Rv_sim.Traj_cache.get cache ~label:la ~start:pa in
            let tb = Rv_sim.Traj_cache.get cache ~label:lb ~start:pb in
            let max_rounds =
              max (ta.Rv_sim.Traj.rounds + da) (tb.Rv_sim.Traj.rounds + db) + 1
            in
            let m =
              match model_v with
              | Rv_sim.Sim.Waiting ->
                  tally.traj_c <- tally.traj_c + 1;
                  Rv_sim.Traj.meet ~a:ta ~b:tb ~delay_a:da ~delay_b:db ~max_rounds
              | Rv_sim.Sim.Parachute ->
                  tally.intv_c <- tally.intv_c + 1;
                  Rv_sim.Traj.meet_intervals ~a:ta ~b:tb ~delay_a:da ~delay_b:db
                    ~max_rounds
            in
            (m.Rv_sim.Traj.meeting_round, m.Rv_sim.Traj.cost, m.Rv_sim.Traj.rounds_run)
        | None ->
            tally.ref_c <- tally.ref_c + 1;
            let out =
              R.run ?model ~g ~explorer ~algorithm ~space
                { R.label = la; start = pa; delay = da }
                { R.label = lb; start = pb; delay = db }
            in
            (out.Rv_sim.Sim.meeting_round, out.Rv_sim.Sim.cost, out.Rv_sim.Sim.rounds_run))
  in
  let obs = Rv_obs.Obs.enabled () in
  let pair_arr = Array.of_list pairs in
  let delay_arr = Array.of_list delays in
  (* Replay one label pair's configuration stream against an outcome
     lookup, in the exact order the unreduced sweep visits it (positions
     outer, delays inner, lazily stopped by the first failure), emitting
     records and folding the worst cell.  The unreduced path passes the
     live simulator as [outcome_of]; the reduced path passes the
     representative table — the byte stream is identical either way
     because every outcome field is orbit-invariant and the failure
     message embeds the {e actual} starts. *)
  let replay ~la ~lb ~outcome_of =
    let worst_t = ref 0 and worst_c = ref 0 in
    let failure = ref None in
    let recorded = ref [] in
    let covered = ref 0 in
    List.iter
      (fun (pa, pb) ->
        Array.iteri
          (fun d (da, db) ->
            if Option.is_none !failure then begin
              let meeting_round, cost, rounds_run = outcome_of ~pa ~pb ~d ~da ~db in
              incr covered;
              (match sink with
              | None -> ()
              | Some _ ->
                  let met = Option.is_some meeting_round in
                  recorded :=
                    {
                      Rv_engine.Record.graph = graph_spec;
                      algorithm = algo_name;
                      label_a = la;
                      label_b = lb;
                      start_a = pa;
                      start_b = pb;
                      delay_a = da;
                      delay_b = db;
                      met;
                      time = (match meeting_round with Some t -> t | None -> rounds_run);
                      cost;
                    }
                    :: !recorded);
              match meeting_round with
              | Some t ->
                  worst_t := max !worst_t t;
                  worst_c := max !worst_c cost;
                  Option.iter (fun p -> Progress.observe p ~time:t ~cost) progress
              | None ->
                  failure :=
                    Some
                      (Printf.sprintf
                         "%s: no rendezvous (labels %d/%d, starts %d/%d, delays %d/%d)"
                         algo_name la lb pa pb da db)
            end)
          delay_arr)
      expand;
    Option.iter Progress.tick progress;
    ignore (Atomic.fetch_and_add Stats.covered !covered);
    let result =
      match !failure with None -> Ok (!worst_t, !worst_c) | Some e -> Error e
    in
    (result, List.rev !recorded)
  in
  let merge outcomes =
    Array.fold_left
      (fun acc (result, recorded) ->
        Option.iter (fun s -> List.iter (Sink.emit s) recorded) sink;
        match (acc, result) with
        | Error _, _ -> acc
        | Ok _, Error e -> Error e
        | Ok (at, ac), Ok (t, c) -> Ok (max at t, max ac c))
      (Ok (0, 0)) outcomes
  in
  match symq with
  | None ->
      (* One task per label pair.  A task touches nothing shared: graphs
         are immutable, explorer state is created fresh per simulation
         (and the trajectory cache is domain-local), and the task's
         records are buffered locally and emitted by the caller during
         the in-order merge — so the sink's byte stream is identical for
         any pool size. *)
      let run_pair (la, lb) =
        if obs then
          Rv_obs.Obs.begin_span ~cat:"workload"
            ~args:[ ("la", Rv_obs.Json.Int la); ("lb", Rv_obs.Json.Int lb) ]
            "workload.pair";
        let tally = { ref_c = 0; traj_c = 0; intv_c = 0 } in
        let r =
          replay ~la ~lb ~outcome_of:(fun ~pa ~pb ~d:_ ~da ~db ->
              simulate tally ~la ~lb ~pa ~pb ~da ~db)
        in
        flush_tally tally;
        if obs then begin
          Rv_obs.Counter.count "workload.pairs" 1;
          Rv_obs.Obs.end_span ()
        end;
        r
      in
      merge
        (Engine_sweep.map_array ?pool ~chunk:1 (Array.length pair_arr) (fun i ->
             run_pair pair_arr.(i)))
  | Some s ->
      (* Orbit-reduced sweep: simulate only the canonical representatives
         (0, c) — 1/orbit of the pair space — then replay the full space
         through the representative table.  Representative cells are
         computed eagerly (a pair whose replay fails early may therefore
         simulate cells the lazy unreduced sweep would have skipped —
         invisible in the output, which stops at the failure exactly like
         the unreduced stream), and split into deterministic subtasks so
         the pool balances inside a pair (Sweep.map_nested: the subtask
         space depends only on the cell counts, never on the pool). *)
      let reps = n - 1 in
      let nd = Array.length delay_arr in
      let chunks_per_pair = min 8 reps in
      let base = reps / chunks_per_pair and extra = reps mod chunks_per_pair in
      let chunk_lo j = (j * base) + min j extra in
      let counts = Array.make (Array.length pair_arr) chunks_per_pair in
      let run_chunk o j =
        let la, lb = pair_arr.(o) in
        if obs then
          Rv_obs.Obs.begin_span ~cat:"workload"
            ~args:[ ("la", Rv_obs.Json.Int la); ("lb", Rv_obs.Json.Int lb) ]
            "workload.rep_chunk";
        let tally = { ref_c = 0; traj_c = 0; intv_c = 0 } in
        let lo = chunk_lo j and hi = chunk_lo (j + 1) in
        let out = Array.make ((hi - lo) * nd) (None, 0, 0) in
        for i = lo to hi - 1 do
          let pb = i + 1 in
          for d = 0 to nd - 1 do
            let da, db = delay_arr.(d) in
            out.(((i - lo) * nd) + d) <- simulate tally ~la ~lb ~pa:0 ~pb ~da ~db
          done
        done;
        flush_tally tally;
        if obs then Rv_obs.Obs.end_span ();
        out
      in
      let chunked = Engine_sweep.map_nested ?pool ~chunk:1 counts run_chunk in
      merge
        (Array.mapi
           (fun o per_chunk ->
             let la, lb = pair_arr.(o) in
             let table = Array.concat (Array.to_list per_chunk) in
             (* table.((c - 1) * nd + d) is the outcome of representative
                (0, c) under delay d; canon_pair maps any (pa, pb) to its
                representative in O(1). *)
             let r =
               replay ~la ~lb ~outcome_of:(fun ~pa ~pb ~d ~da:_ ~db:_ ->
                   let _, c = Sym.canon_pair s pa pb in
                   table.(((c - 1) * nd) + d))
             in
             if obs then Rv_obs.Counter.count "workload.pairs" 1;
             r)
           chunked)

let ring_delays ~e =
  let ds = List.sort_uniq Int.compare [ 0; 1; e / 2; e; e + 1 ] in
  List.map (fun d -> (0, d)) ds @ List.filter_map (fun d -> if d > 0 then Some (d, 0) else None) ds

let e_of explorer = (explorer ~start:0).Rv_explore.Explorer.bound

module R = Rv_core.Rendezvous
module Table = Rv_util.Table

let measure ?pool ~g ~n ~space algorithm =
  let explorer ~start =
    ignore start;
    Rv_explore.Ring_walk.clockwise ~n
  in
  let pairs = Workload.sample_pairs ~space ~max_pairs:8 in
  Workload.worst_for ?pool ~g ~algorithm ~space ~explorer ~pairs ~positions:`Fixed_first
    ~delays:[ (0, 0) ] ()

let table ?pool ?(n = 16) ?(space = 256) () =
  let g = Rv_graph.Ring.oriented n in
  let e = n - 1 in
  let log2_space = int_of_float (ceil (log (float_of_int space) /. log 2.0)) in
  let entries =
    [ ("cheap-sim (endpoint)", R.Cheap_simultaneous) ]
    @ List.init log2_space (fun i ->
          let w = i + 1 in
          let scheme = Rv_core.Relabel.scheme ~space ~weight:w in
          ( Printf.sprintf "fwr-sim w=%d (t=%d)" w scheme.Rv_core.Relabel.t,
            R.Fwr_simultaneous w ))
    @ [ ("fast-sim (endpoint)", R.Fast_simultaneous) ]
  in
  let rows =
    List.map
      (fun (label, algorithm) ->
        match measure ?pool ~g ~n ~space algorithm with
        | Error msg -> [ label; "FAIL: " ^ msg; "-"; "-"; "-" ]
        | Ok (t, c) ->
            [
              label;
              string_of_int t;
              Table.cell_float (float_of_int t /. float_of_int e);
              string_of_int c;
              Table.cell_float (float_of_int c /. float_of_int e);
            ])
      entries
  in
  Table.make
    ~title:
      (Printf.sprintf
         "EXP-D: the time/cost tradeoff curve via FastWithRelabeling (ring n=%d, E=%d, L=%d)"
         n e space)
    ~headers:[ "algorithm"; "worst time"; "time/E"; "worst cost"; "cost/E" ]
    ~notes:
      [
        "Simultaneous start.  Moving down the rows, time falls and cost rises:";
        "w=1 reproduces the Cheap end, w=log L approaches the Fast end, and";
        "intermediate w beats Cheap's Theta(EL) time at Theta(E) cost (Corollary 2.1).";
      ]
    rows

let bench_kernel () =
  let n = 12 in
  let g = Rv_graph.Ring.oriented n in
  match measure ~g ~n ~space:64 (R.Fwr_simultaneous 2) with Ok _ -> () | Error _ -> ()

(** EXP-F — arbitrary graphs, each with its natural exploration procedure
    and bound [E] (the scenarios of Section 1.2: maps with marked starts,
    Hamiltonian/Eulerian certificates, unmarked maps, and UXS).

    Runs Algorithm [Fast] on each (graph, explorer) pair and reports the
    measured worst time and cost in units of the declared [E] — the paper's
    bounds are graph-independent once stated in those units, which this
    table confirms across nine very different substrates. *)

val table : ?pool:Rv_engine.Pool.t -> ?space:int -> unit -> Rv_util.Table.t

val bench_kernel : unit -> unit

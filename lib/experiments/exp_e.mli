(** EXP-E — sensitivity to the wake-up delay [tau] (Propositions 2.1/2.2).

    Time and cost of [Cheap] and [Fast] as functions of the delay between
    the agents' starts, worst-cased over starting gaps on an oriented ring.
    The regime change at [tau > E] — where the earlier agent's first
    exploration finds the still-sleeping later agent — is clearly visible:
    both time and cost collapse to [<= E]. *)

val table :
  ?pool:Rv_engine.Pool.t ->
  ?n:int ->
  ?space:int ->
  ?labels:int * int ->
  unit ->
  Rv_util.Table.t

val bench_kernel : unit -> unit

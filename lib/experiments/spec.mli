(** Textual specifications of graphs and exploration procedures, shared by
    the [rv] command-line tool and tests.

    Graph specs:
    - ["ring:N"] — oriented ring
    - ["scrambled-ring:N[:SEED]"] — ring with random port labels
    - ["path:N"], ["star:N"], ["tree:N[:SEED]"], ["binary:DEPTH"]
    - ["grid:RxC"], ["torus:RxC"], ["hypercube:D"]
    - ["complete:N"], ["wheel:N"], ["petersen"]
    - ["lollipop:CLIQUE:TAIL"], ["barbell:CLIQUE:BRIDGE"], ["theta:LEN"]
    - ["random:N:EXTRA[:SEED]"] — random connected graph
    - ["file:PATH"] — load a {!Rv_graph.Serial} text file

    Explorer specs:
    - ["auto"] — the natural procedure for the graph (oriented ring walk,
      Hamiltonian walk, Euler walk, else marked-map DFS)
    - ["ring"] — clockwise walk (oriented rings only)
    - ["dfs"] / ["dfs-nr"] — marked-map DFS, returning / non-returning
    - ["unmarked"] — try-each-DFS without a marked start
    - ["euler"] — Eulerian circuit (Eulerian graphs only)
    - ["ham"] — Hamiltonian walk (families with a known cycle)
    - ["uxs[:SEED]"] — corpus-verified universal exploration sequence *)

type graph = {
  spec : string;
  g : Rv_graph.Port_graph.t;
  hamiltonian : int list option;  (** certificate, when the family has one *)
  oriented_ring : bool;
}

val parse_graph : string -> (graph, string) result
(** Parse a graph family spec (see {!graph_forms}).  Never raises, and
    size parameters are checked against hard ceilings {e before} any
    construction — untrusted input (the rv_serve wire) cannot trigger a
    huge allocation. *)

val parse_explorer :
  graph -> string -> (start:int -> Rv_explore.Explorer.t, string) result

val parse_algorithm : string -> (Rv_core.Rendezvous.algorithm, string) result
(** ["cheap"], ["cheap-sim"], ["fast"], ["fast-sim"], ["fwr:W"],
    ["fwr-sim:W"]. *)

val graph_forms : string list
(** Human-readable list of accepted graph forms (for [--help]). *)

val explorer_forms : string list

val algorithm_forms : string list

module Table = Rv_util.Table
module R = Rv_core.Rendezvous
module Sim = Rv_sim.Sim
module Sched = Rv_core.Schedule

let deterministic_row ?pool ~g ~n ~space name algorithm =
  let explorer ~start = ignore start; Rv_explore.Ring_walk.clockwise ~n in
  let pairs = Workload.sample_pairs ~space ~max_pairs:8 in
  match
    Workload.worst_for ?pool ~g ~algorithm ~space ~explorer ~pairs ~positions:`Fixed_first
      ~delays:[ (0, 0) ] ()
  with
  | Error msg -> [ name; "worst-case"; "FAIL: " ^ msg; "-"; "labels" ]
  | Ok (t, c) ->
      [ name; "worst-case"; string_of_int t; string_of_int c; "labels" ]

let oracle_row ~g ~n ~space =
  let explorer = Rv_explore.Ring_walk.clockwise ~n in
  let worst_t = ref 0 and worst_c = ref 0 in
  List.iter
    (fun (la, lb) ->
      for gap = 1 to n - 1 do
        let make mine other =
          Sched.to_instance
            (Rv_baselines.Oracle.schedule ~my_label:mine ~other_label:other ~explorer)
        in
        let out =
          Sim.run ~g ~max_rounds:(2 * n)
            { Sim.start = 0; delay = 0; step = make la lb }
            { Sim.start = gap; delay = 0; step = make lb la }
        in
        worst_t := max !worst_t (Sim.time out);
        worst_c := max !worst_c out.Sim.cost
      done)
    (Workload.sample_pairs ~space ~max_pairs:6);
  [
    "identity oracle";
    "worst-case";
    string_of_int !worst_t;
    string_of_int !worst_c;
    "knows both labels";
  ]

let token_row ~n =
  let worst_t = ref 0 and worst_c = ref 0 and ties = ref 0 in
  for gap = 1 to n - 1 do
    match Rv_baselines.Token_ring.run ~n ~start_a:0 ~start_b:gap with
    | Rv_baselines.Token_ring.Met m ->
        worst_t := max !worst_t m.round;
        worst_c := max !worst_c m.cost
    | Rv_baselines.Token_ring.Symmetric_tie -> incr ties
  done;
  [
    "token model (no labels)";
    (if !ties = 0 then "worst-case" else Printf.sprintf "worst-case (%d tie)" !ties);
    string_of_int !worst_t;
    string_of_int !worst_c;
    "marks its start node";
  ]

let random_walk_row ~g ~n =
  match
    Rv_baselines.Random_walk.measure ~g ~start_a:0 ~start_b:(n / 2) ~trials:200 ~seed:11
      ~max_rounds:(2000 * n)
  with
  | Error msg -> [ "random walk (no labels)"; "expected"; "FAIL: " ^ msg; "-"; "randomness" ]
  | Ok (t, c) ->
      [
        "random walk (no labels)";
        "expected";
        Printf.sprintf "%.0f (max %d)" t.Rv_util.Stats.mean t.Rv_util.Stats.max;
        Printf.sprintf "%.0f" c.Rv_util.Stats.mean;
        "randomness";
      ]

let table ?pool ?(n = 16) ?(space = 16) () =
  let g = Rv_graph.Ring.oriented n in
  let rows =
    [
      oracle_row ~g ~n ~space;
      deterministic_row ?pool ~g ~n ~space "cheap-sim" R.Cheap_simultaneous;
      deterministic_row ?pool ~g ~n ~space "fast-sim" R.Fast_simultaneous;
      token_row ~n;
      random_walk_row ~g ~n;
    ]
  in
  Table.make
    ~title:
      (Printf.sprintf
         "EXP-J: capability baselines around the model (oriented ring n=%d, E=%d, L=%d)" n
         (n - 1) space)
    ~headers:[ "agent capability"; "guarantee"; "time"; "cost"; "symmetry breaker" ]
    ~notes:
      [
        "The oracle shows the E floor; Cheap/Fast pay the L-dependent price of knowing";
        "nothing about the other agent; tokens trade labels for marking (with a tie";
        "failure on antipodal starts); random walks drop determinism altogether.";
      ]
    rows

let bench_kernel () =
  let n = 8 in
  ignore (token_row ~n);
  ignore (oracle_row ~g:(Rv_graph.Ring.oriented n) ~n ~space:4)

(** EXP-A — the headline table (Propositions 2.1–2.3).

    Worst-case time and cost of [Cheap], [Fast], [FWR(2)], [FWR(3)] on the
    oriented ring, over adversarial starting positions, wake-up delays and
    label pairs, against the proven bounds.  Expected shape: [Cheap]'s cost
    stays within [3E] while its time scales with [L]; [Fast]'s time and
    cost both scale with [log L]; [FWR] sits in between. *)

val table :
  ?pool:Rv_engine.Pool.t -> ?n:int -> ?spaces:int list -> unit -> Rv_util.Table.t

val bench_kernel : unit -> unit
(** A small, fixed-size run of the same computation, timed by Bechamel. *)

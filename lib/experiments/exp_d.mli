(** EXP-D — the time/cost tradeoff curve (Corollary 2.1 and the paper's
    open problem).

    For fixed [L], walks [FastWithRelabeling(w)] across
    [w = 1 .. ceil(log2 L)] and brackets it with the [Cheap] and [Fast]
    endpoints.  Expected shape: cost increases and time decreases
    monotonically in [w]; intermediate [w] simultaneously beats [Cheap]'s
    time and [Fast]'s cost — the separation result of Section 1.3. *)

val table :
  ?pool:Rv_engine.Pool.t -> ?n:int -> ?space:int -> unit -> Rv_util.Table.t

val bench_kernel : unit -> unit

module Pg = Rv_graph.Port_graph
module Rng = Rv_util.Rng

type graph = {
  spec : string;
  g : Pg.t;
  hamiltonian : int list option;
  oriented_ring : bool;
}

let graph_forms =
  [
    "ring:N";
    "scrambled-ring:N[:SEED]";
    "path:N";
    "star:N";
    "tree:N[:SEED]";
    "binary:DEPTH";
    "grid:RxC";
    "torus:RxC";
    "hypercube:D";
    "complete:N";
    "wheel:N";
    "petersen";
    "lollipop:CLIQUE:TAIL";
    "barbell:CLIQUE:BRIDGE";
    "theta:LEN";
    "random:N:EXTRA[:SEED]";
    "file:PATH";
  ]

let explorer_forms = [ "auto"; "ring"; "dfs"; "dfs-nr"; "unmarked"; "euler"; "ham"; "uxs[:SEED]" ]

let algorithm_forms = [ "cheap"; "cheap-sim"; "fast"; "fast-sim"; "fwr:W"; "fwr-sim:W" ]

let int_of name s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

let ( let* ) = Result.bind

(* Size ceilings, checked before any graph is constructed.  rv_serve
   feeds untrusted network input into [parse_graph], so a spec like
   "binary:99" must come back [Error] instead of attempting a 2^100-node
   allocation. *)
let max_nodes = 1 lsl 20
let max_clique = 2048

let bounded ?(limit = max_nodes) name n =
  if n > limit then
    Error (Printf.sprintf "%s: %d exceeds the maximum of %d" name n limit)
  else Ok n

let dims s =
  match String.split_on_char 'x' s with
  | [ r; c ] ->
      let* r = int_of "rows" r in
      let* c = int_of "cols" c in
      Ok (r, c)
  | _ -> Error (Printf.sprintf "expected RxC, got %S" s)

let plain g = Ok { spec = ""; g; hamiltonian = None; oriented_ring = false }

let parse_graph spec =
  let parts = String.split_on_char ':' spec in
  let result =
    try
      match parts with
      | [ "ring"; n ] ->
          let* n = int_of "n" n in
          let* n = bounded "n" n in
          Ok
            {
              spec;
              g = Rv_graph.Ring.oriented n;
              hamiltonian = Some (Rv_graph.Ring.clockwise_cycle n);
              oriented_ring = true;
            }
      | "scrambled-ring" :: n :: rest ->
          let* n = int_of "n" n in
          let* n = bounded "n" n in
          let* seed = match rest with [] -> Ok 1 | [ s ] -> int_of "seed" s | _ -> Error "too many fields" in
          plain (Rv_graph.Ring.scrambled (Rng.create ~seed) n)
      | [ "path"; n ] ->
          let* n = int_of "n" n in
          let* n = bounded "n" n in
          plain (Rv_graph.Tree.path n)
      | [ "star"; n ] ->
          let* n = int_of "n" n in
          let* n = bounded "n" n in
          plain (Rv_graph.Tree.star n)
      | "tree" :: n :: rest ->
          let* n = int_of "n" n in
          let* n = bounded "n" n in
          let* seed = match rest with [] -> Ok 1 | [ s ] -> int_of "seed" s | _ -> Error "too many fields" in
          plain (Rv_graph.Tree.random (Rng.create ~seed) n)
      | [ "binary"; d ] ->
          let* depth = int_of "depth" d in
          let* depth = bounded ~limit:19 "depth" depth in
          plain (Rv_graph.Tree.full_binary ~depth)
      | [ "grid"; d ] ->
          let* rows, cols = dims d in
          let* rows = bounded "rows" rows in
          let* cols = bounded "cols" cols in
          let* _ = bounded "rows*cols" (rows * cols) in
          plain (Rv_graph.Grid.make ~rows ~cols)
      | [ "torus"; d ] ->
          let* rows, cols = dims d in
          let* rows = bounded "rows" rows in
          let* cols = bounded "cols" cols in
          let* _ = bounded "rows*cols" (rows * cols) in
          Ok
            {
              spec;
              g = Rv_graph.Torus.make ~rows ~cols;
              hamiltonian = Some (Rv_graph.Torus.hamiltonian_cycle ~rows ~cols);
              oriented_ring = false;
            }
      | [ "hypercube"; d ] ->
          let* dim = int_of "dim" d in
          let* dim = bounded ~limit:20 "dim" dim in
          Ok
            {
              spec;
              g = Rv_graph.Hypercube.make ~dim;
              hamiltonian = Some (Rv_graph.Hypercube.hamiltonian_cycle ~dim);
              oriented_ring = false;
            }
      | [ "complete"; n ] ->
          let* n = int_of "n" n in
          let* n = bounded ~limit:max_clique "n" n in
          Ok
            {
              spec;
              g = Rv_graph.Complete_graph.make n;
              hamiltonian = Some (Rv_graph.Complete_graph.hamiltonian_cycle n);
              oriented_ring = false;
            }
      | [ "wheel"; n ] ->
          let* n = int_of "n" n in
          let* n = bounded "n" n in
          plain (Rv_graph.Special.wheel n)
      | [ "petersen" ] -> plain (Rv_graph.Special.petersen ())
      | [ "lollipop"; c; t ] ->
          let* clique = int_of "clique" c in
          let* clique = bounded ~limit:max_clique "clique" clique in
          let* tail = int_of "tail" t in
          let* tail = bounded "tail" tail in
          plain (Rv_graph.Special.lollipop ~clique ~tail)
      | [ "barbell"; c; b ] ->
          let* clique = int_of "clique" c in
          let* clique = bounded ~limit:max_clique "clique" clique in
          let* bridge = int_of "bridge" b in
          let* bridge = bounded "bridge" bridge in
          plain (Rv_graph.Special.barbell ~clique ~bridge)
      | [ "theta"; l ] ->
          let* len = int_of "len" l in
          let* len = bounded "len" len in
          plain (Rv_graph.Special.theta ~len)
      | "file" :: path_parts ->
          let path = String.concat ":" path_parts in
          Result.bind (Rv_graph.Serial.read_file ~path) plain
      | "random" :: n :: extra :: rest ->
          let* n = int_of "n" n in
          let* n = bounded "n" n in
          let* extra = int_of "extra" extra in
          let* extra = bounded "extra" extra in
          let* seed = match rest with [] -> Ok 1 | [ s ] -> int_of "seed" s | _ -> Error "too many fields" in
          plain (Rv_graph.Random_graph.connected (Rng.create ~seed) ~n ~extra_edges:extra)
      | _ ->
          Error
            (Printf.sprintf "unknown graph spec %S; accepted forms: %s" spec
               (String.concat ", " graph_forms))
    with Invalid_argument msg -> Error msg
  in
  Result.map (fun g -> { g with spec }) result

let parse_explorer graph spec =
  let g = graph.g in
  let parts = String.split_on_char ':' spec in
  try
    match parts with
    | [ "auto" ] ->
        if graph.oriented_ring then
          Ok (fun ~start -> ignore start; Rv_explore.Ring_walk.clockwise ~n:(Pg.n g))
        else (
          match graph.hamiltonian with
          | Some cycle -> Ok (fun ~start -> Rv_explore.Ham_walk.make g ~cycle ~start)
          | None ->
              if Rv_graph.Euler.is_eulerian g then
                Ok (fun ~start -> Rv_explore.Euler_walk.closed g ~start)
              else Ok (fun ~start -> Rv_explore.Map_dfs.returning g ~start))
    | [ "ring" ] ->
        if graph.oriented_ring then
          Ok (fun ~start -> ignore start; Rv_explore.Ring_walk.clockwise ~n:(Pg.n g))
        else Error "explorer 'ring' needs an oriented ring"
    | [ "dfs" ] -> Ok (fun ~start -> Rv_explore.Map_dfs.returning g ~start)
    | [ "dfs-nr" ] -> Ok (fun ~start -> Rv_explore.Map_dfs.non_returning g ~start)
    | [ "unmarked" ] -> Ok (fun ~start -> ignore start; Rv_explore.Unmarked_dfs.make g)
    | [ "euler" ] ->
        if Rv_graph.Euler.is_eulerian g then
          Ok (fun ~start -> Rv_explore.Euler_walk.closed g ~start)
        else Error "explorer 'euler' needs an Eulerian graph"
    | [ "ham" ] -> (
        match graph.hamiltonian with
        | Some cycle -> Ok (fun ~start -> Rv_explore.Ham_walk.make g ~cycle ~start)
        | None -> Error "explorer 'ham' needs a family with a Hamiltonian certificate")
    | "uxs" :: rest -> (
        let seed = match rest with [ s ] -> int_of_string_opt s | _ -> Some 42 in
        match seed with
        | None -> Error "uxs: bad seed"
        | Some seed ->
            let m = Pg.n g in
            let corpus = g :: Rv_explore.Uxs.default_corpus ~size_bound:m in
            Result.map
              (fun u -> fun ~start -> ignore start; Rv_explore.Uxs_walk.make u)
              (Rv_explore.Uxs.construct ~corpus ~size_bound:m ~seed ()))
    | _ ->
        Error
          (Printf.sprintf "unknown explorer spec %S; accepted forms: %s" spec
             (String.concat ", " explorer_forms))
  with Invalid_argument msg -> Error msg

let parse_algorithm spec =
  let parts = String.split_on_char ':' spec in
  match parts with
  | [ "cheap" ] -> Ok Rv_core.Rendezvous.Cheap
  | [ "cheap-sim" ] -> Ok Rv_core.Rendezvous.Cheap_simultaneous
  | [ "fast" ] -> Ok Rv_core.Rendezvous.Fast
  | [ "fast-sim" ] -> Ok Rv_core.Rendezvous.Fast_simultaneous
  | [ "fwr"; w ] -> (
      match int_of_string_opt w with
      | Some w when w >= 1 -> Ok (Rv_core.Rendezvous.Fwr w)
      | Some _ | None -> Error "fwr: weight must be a positive integer")
  | [ "fwr-sim"; w ] -> (
      match int_of_string_opt w with
      | Some w when w >= 1 -> Ok (Rv_core.Rendezvous.Fwr_simultaneous w)
      | Some _ | None -> Error "fwr-sim: weight must be a positive integer")
  | _ ->
      Error
        (Printf.sprintf "unknown algorithm %S; accepted forms: %s" spec
           (String.concat ", " algorithm_forms))

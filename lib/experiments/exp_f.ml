module R = Rv_core.Rendezvous
module Table = Rv_util.Table
module Pg = Rv_graph.Port_graph

type scenario = {
  name : string;
  g : Pg.t;
  explorer : start:int -> Rv_explore.Explorer.t;
  knowledge : string;
}

let scenarios () =
  let rng = Rv_util.Rng.create ~seed:7 in
  let ring = Rv_graph.Ring.oriented 16 in
  let ring_s = Rv_graph.Ring.scrambled rng 16 in
  let grid = Rv_graph.Grid.make ~rows:4 ~cols:4 in
  let torus = Rv_graph.Torus.make ~rows:4 ~cols:4 in
  let hc = Rv_graph.Hypercube.make ~dim:3 in
  let hc_cycle = Rv_graph.Hypercube.hamiltonian_cycle ~dim:3 in
  let tree = Rv_graph.Tree.random rng 16 in
  let complete = Rv_graph.Complete_graph.make 9 in
  let complete_cycle = Rv_graph.Complete_graph.hamiltonian_cycle 9 in
  let lolli = Rv_graph.Special.lollipop ~clique:5 ~tail:4 in
  let rand = Rv_graph.Random_graph.connected rng ~n:14 ~extra_edges:6 in
  let uxs =
    match
      Rv_explore.Uxs.construct
        ~corpus:(Rv_explore.Uxs.default_corpus ~size_bound:14)
        ~size_bound:14 ~seed:2024 ()
    with
    | Ok u -> u
    | Error e -> failwith e
  in
  [
    {
      name = "oriented ring n=16";
      g = ring;
      explorer = (fun ~start -> ignore start; Rv_explore.Ring_walk.clockwise ~n:16);
      knowledge = "orientation (E=n-1)";
    };
    {
      name = "scrambled ring n=16";
      g = ring_s;
      explorer = (fun ~start -> Rv_explore.Map_dfs.returning ring_s ~start);
      knowledge = "marked map (E=2n-2)";
    };
    {
      name = "grid 4x4";
      g = grid;
      explorer = (fun ~start -> Rv_explore.Map_dfs.returning grid ~start);
      knowledge = "marked map (E=2n-2)";
    };
    {
      name = "torus 4x4";
      g = torus;
      explorer = (fun ~start -> Rv_explore.Euler_walk.closed torus ~start);
      knowledge = "Euler circuit (E=e)";
    };
    {
      name = "hypercube d=3";
      g = hc;
      explorer = (fun ~start -> Rv_explore.Ham_walk.make hc ~cycle:hc_cycle ~start);
      knowledge = "Hamiltonian cycle (E=n-1)";
    };
    {
      name = "random tree n=16";
      g = tree;
      explorer = (fun ~start -> Rv_explore.Map_dfs.non_returning tree ~start);
      knowledge = "marked map (E=2n-3)";
    };
    {
      name = "complete K9";
      g = complete;
      explorer =
        (fun ~start -> Rv_explore.Ham_walk.make complete ~cycle:complete_cycle ~start);
      knowledge = "Hamiltonian cycle (E=n-1)";
    };
    {
      name = "lollipop 5+4";
      g = lolli;
      explorer = (fun ~start -> ignore start; Rv_explore.Unmarked_dfs.make lolli);
      knowledge = "unmarked map (E=2n(2n-2))";
    };
    {
      name = "random n=14";
      g = rand;
      explorer = (fun ~start -> ignore start; Rv_explore.Uxs_walk.make uxs);
      knowledge = "size bound only (UXS)";
    };
  ]

let measure ?pool ~space s =
  let e = Workload.e_of s.explorer in
  let measured_e =
    match Rv_explore.Bounds.worst s.g ~make:s.explorer with
    | Ok w -> w
    | Error _ -> -1
  in
  let pairs = Workload.sample_pairs ~space ~max_pairs:4 in
  let delays = [ (0, 0); (0, max 1 (e / 3)) ] in
  let positions =
    (* Exhaustive start pairs are too many for the slow explorers; sample a
       spread of gaps from node 0 plus a few arbitrary pairs. *)
    let n = Pg.n s.g in
    `Pairs
      (List.filter_map (fun i -> if i <> 0 then Some (0, i) else None)
         (List.init n (fun i -> i))
      @ [ (n / 2, n - 1); (n - 1, 1) ])
  in
  match
    Workload.worst_for ?pool ~g:s.g ~algorithm:R.Fast ~space ~explorer:s.explorer ~pairs
      ~positions ~delays ()
  with
  | Error msg ->
      [ s.name; s.knowledge; string_of_int e; "-"; "FAIL: " ^ msg; "-"; "-"; "-" ]
  | Ok (t, c) ->
      [
        s.name;
        s.knowledge;
        string_of_int e;
        string_of_int measured_e;
        string_of_int t;
        Table.cell_float (float_of_int t /. float_of_int e);
        string_of_int c;
        Table.cell_float (float_of_int c /. float_of_int e);
      ]

let table ?pool ?(space = 8) () =
  let rows = List.map (measure ?pool ~space) (scenarios ()) in
  Table.make
    ~title:
      (Printf.sprintf "EXP-F: Fast across graph families and exploration procedures (L=%d)"
         space)
    ~headers:
      [ "graph"; "knowledge / E"; "E"; "measured E"; "worst time"; "time/E"; "worst cost"; "cost/E" ]
    ~notes:
      [
        "Per Section 1.2, the bound E depends on what the agents know;";
        "normalized by the right E, Fast's time/E and cost/E stay within the";
        "same O(log L) envelope on every substrate.  'measured E' is the exact";
        "exploration time (Bounds.worst): where the declared E is loose (unmarked";
        "map, UXS) the time/E ratio shrinks proportionally -- sharper knowledge";
        "of E transfers one-for-one into rendezvous performance.";
      ]
    rows

let bench_kernel () =
  let grid = Rv_graph.Grid.make ~rows:3 ~cols:3 in
  let explorer ~start = Rv_explore.Map_dfs.returning grid ~start in
  match
    Workload.worst_for ~g:grid ~algorithm:R.Fast ~space:8 ~explorer ~pairs:[ (3, 5) ]
      ~positions:(`Pairs [ (0, 4) ]) ~delays:[ (0, 0) ] ()
  with
  | Ok _ -> ()
  | Error _ -> ()

(** Measured cost model choosing between the reference simulator and the
    trajectory fast path, per sweep.

    The trajectory path ({!Rv_sim.Traj}) wins when walks are reused —
    each materialized walk amortizes over many partners, positions and
    delays — and loses when a sweep builds long walks it barely scans:
    a sweep whose meetings happen within a few rounds (EXP-E's
    delay-offset cells) pays O(schedule duration) per build to save
    O(meeting round) per simulation, a net regression.  The unconditional
    fast path cost EXP-E 0.35x; dispatching on predicted cost removes
    the regression while keeping the 3x+ wins elsewhere.

    The prediction is [builds + scans < simulations] in nanoseconds:

    - [build_ns * build_rounds] — materializing every distinct
      (label, start) trajectory the sweep needs;
    - [scan_ns * configs * probe_rounds] — one array scan per
      configuration, its length estimated by the probe;
    - [sim_ns * configs * probe_rounds] — the reference simulator's
      per-round cost over the same configurations.

    [probe_rounds] comes from running the sweep's {e first}
    configuration through the reference simulator; its outcome is reused
    as that configuration's result (both paths agree exactly — the
    equivalence is property-tested), so probing costs nothing beyond the
    decision itself.  The per-round constants are {e measured once per
    process} on synthetic ring kernels ({!constants}) rather than
    hard-coded, so the model tracks the machine it runs on.

    The choice never affects results — both paths are byte-equivalent —
    only which one runs; CI's RV_NO_TRAJ byte-comparison enforces this. *)

type features = {
  configs : int;  (** configurations (pair x position x delay cells) *)
  build_rounds : int;
      (** total {e active} (explore) rounds across the distinct
          (label, start) trajectories the sweep would materialize —
          waiting segments are an [Array.fill] in
          {!Rv_sim.Traj.of_blocks} and cost nothing per round *)
  probe_rounds : int;  (** [rounds_run] of the probe configuration *)
}

type constants = {
  build_ns : float;  (** ns per materialized trajectory round *)
  scan_ns : float;  (** ns per scanned round in {!Rv_sim.Traj.meet} *)
  sim_ns : float;  (** ns per simulated round in {!Rv_sim.Sim.run} *)
}

val constants : unit -> constants
(** The process-wide calibration, measured on first use (minimum of
    three reps over 8192-round synthetic ring kernels, a few hundred
    microseconds total) and then cached — a compare-and-set publishes
    the first finished measurement, so concurrent first calls agree. *)

val decide : constants -> features -> bool
(** [decide c f] is [true] when the model predicts the trajectory path
    is cheaper.  Pure — tests exercise it with synthetic constants. *)

val use_traj : features -> bool
(** [decide (constants ()) f]. *)

val small_sweep_configs : int
(** Sweeps with fewer configurations than this skip the probe entirely
    and keep the reference path: they finish in tens of microseconds on
    either kernel, so the probe (one full reference simulation plus the
    feature computation) costs more than any decision could save.  The
    trajectory path's wins all come from sweeps orders of magnitude past
    this floor. *)

module R = Rv_core.Rendezvous
module Table = Rv_util.Table

let adversarial_pairs ~space =
  (* Max-weight labels (all ones) maximize Fast's exploration count. *)
  let ones = Workload.all_ones_label ~space in
  let cands = [ (ones / 2, ones); (ones, space); (space - 1, space); (1, 2); (1, space) ] in
  List.filter (fun (a, b) -> a >= 1 && a < b && b <= space) cands
  |> List.sort_uniq Rv_util.Ord.(pair int int)

let worst ?pool ~g ~n ~space ~simultaneous () =
  let explorer ~start =
    ignore start;
    Rv_explore.Ring_walk.clockwise ~n
  in
  let algorithm = if simultaneous then R.Fast_simultaneous else R.Fast in
  let delays = if simultaneous then [ (0, 0) ] else Workload.ring_delays ~e:(n - 1) in
  Workload.worst_for ?pool ~g ~algorithm ~space ~explorer ~pairs:(adversarial_pairs ~space)
    ~positions:`Fixed_first ~delays ()

let table ?pool ?(n = 16) ?(spaces = [ 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]) () =
  let g = Rv_graph.Ring.oriented n in
  let e = n - 1 in
  let rows_and_points =
    List.map
      (fun space ->
        match worst ?pool ~g ~n ~space ~simultaneous:false () with
        | Error msg -> ([ string_of_int space; "FAIL: " ^ msg; "-"; "-"; "-" ], None)
        | Ok (t, c) ->
            ( [
                string_of_int space;
                string_of_int c;
                Table.cell_float (float_of_int c /. float_of_int e);
                string_of_int t;
                Table.cell_float (float_of_int t /. float_of_int e);
              ],
              Some (log (float_of_int space) /. log 2.0, float_of_int c) ))
      spaces
  in
  let rows = List.map fst rows_and_points in
  let points = List.filter_map snd rows_and_points in
  let note =
    if List.length points >= 2 then begin
      let _, slope = Rv_util.Stats.linear_fit points in
      Printf.sprintf
        "Linear fit in log2 L: worst cost ~ %.2f * log2 L rounds = %.2f * E * log2 L (Theorem 3.2 predicts Omega(E log L))."
        slope (slope /. float_of_int e)
    end
    else "Not enough points for a fit."
  in
  Table.make
    ~title:
      (Printf.sprintf "EXP-C: cost of O(E log L)-time rendezvous vs L (fast, oriented ring n=%d, E=%d)" n e)
    ~headers:[ "L"; "worst cost"; "cost/E"; "worst time"; "time/E" ]
    ~notes:[ note ]
    rows

let bench_kernel () =
  let n = 12 in
  let g = Rv_graph.Ring.oriented n in
  match worst ~g ~n ~space:64 ~simultaneous:true () with Ok _ -> () | Error _ -> ()

(** EXP-J — capability baselines around the paper's model.

    The paper's model (no marking, no identity knowledge, deterministic)
    pins down where the [L]-dependence comes from.  This table brackets the
    deterministic algorithms with the baselines the paper mentions:

    - the {b identity oracle} (Section 1.2): both labels known, the smaller
      waits — time and cost [E], the unreachable ideal;
    - the {b token model} (Section 1.4, [39]): anonymous agents that may
      mark their start — [O(n)] on rings with no labels at all, but with an
      unavoidable symmetric-tie failure and a capability the main model
      forbids;
    - the {b randomized baseline} (Section 1.4, [5]): seeded double random
      walks — no labels, only expected-time guarantees. *)

val table :
  ?pool:Rv_engine.Pool.t -> ?n:int -> ?space:int -> unit -> Rv_util.Table.t

val bench_kernel : unit -> unit

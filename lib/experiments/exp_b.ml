module R = Rv_core.Rendezvous
module Table = Rv_util.Table

let worst_time ?pool ~g ~n ~space () =
  let e = n - 1 in
  ignore e;
  let explorer ~start =
    ignore start;
    Rv_explore.Ring_walk.clockwise ~n
  in
  (* The worst pair for CheapSim maximizes the smaller label. *)
  let pairs = [ (space - 1, space); (1, space); (1, 2) ] in
  let pairs =
    List.filter (fun (a, b) -> a >= 1 && a < b) pairs
    |> List.sort_uniq Rv_util.Ord.(pair int int)
  in
  Workload.worst_for ?pool ~g ~algorithm:R.Cheap_simultaneous ~space ~explorer ~pairs
    ~positions:`Fixed_first ~delays:[ (0, 0) ] ()

let table ?pool ?(n = 16) ?(spaces = [ 2; 4; 8; 16; 32; 64 ]) () =
  let g = Rv_graph.Ring.oriented n in
  let e = n - 1 in
  let rows_and_points =
    List.map
      (fun space ->
        match worst_time ?pool ~g ~n ~space () with
        | Error msg -> ([ string_of_int space; "FAIL: " ^ msg; "-"; "-" ], None)
        | Ok (t, c) ->
            ( [
                string_of_int space;
                string_of_int t;
                Table.cell_float (float_of_int t /. float_of_int e);
                string_of_int c;
              ],
              Some (float_of_int space, float_of_int t) ))
      spaces
  in
  let rows = List.map fst rows_and_points in
  let points = List.filter_map snd rows_and_points in
  let slope_note =
    if List.length points >= 2 then begin
      let _, slope = Rv_util.Stats.linear_fit points in
      Printf.sprintf
        "Linear fit: worst time ~ %.2f * L rounds = %.2f * E * L (Theorem 3.1 predicts Omega(E L))."
        slope (slope /. float_of_int e)
    end
    else "Not enough points for a fit."
  in
  Table.make
    ~title:
      (Printf.sprintf "EXP-B: time of cost-E rendezvous vs L (cheap-sim, oriented ring n=%d, E=%d)" n e)
    ~headers:[ "L"; "worst time"; "time/E"; "worst cost" ]
    ~notes:[ slope_note; "Cost stays at E while time grows linearly in L: the Cheap end of the tradeoff." ]
    rows

let bench_kernel () =
  let n = 12 in
  let g = Rv_graph.Ring.oriented n in
  match worst_time ~g ~n ~space:16 () with Ok _ -> () | Error _ -> ()

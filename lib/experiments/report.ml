let catalog : (string * (?pool:Rv_engine.Pool.t -> unit -> Rv_util.Table.t)) list =
  [
    ("EXP-A", fun ?pool () -> Exp_a.table ?pool ());
    ("EXP-B", fun ?pool () -> Exp_b.table ?pool ());
    ("EXP-C", fun ?pool () -> Exp_c.table ?pool ());
    ("EXP-D", fun ?pool () -> Exp_d.table ?pool ());
    ("EXP-E", fun ?pool () -> Exp_e.table ?pool ());
    ("EXP-F", fun ?pool () -> Exp_f.table ?pool ());
    ("EXP-G", fun ?pool () -> ignore pool; Exp_g.table_progress ());
    ("EXP-G2", fun ?pool () -> ignore pool; Exp_g.table_chain ());
    ("EXP-H", fun ?pool () -> ignore pool; Exp_h.table ());
    ("EXP-I", fun ?pool () -> ignore pool; Exp_i.table ());
    ("EXP-J", fun ?pool () -> Exp_j.table ?pool ());
    ("EXP-K", fun ?pool () -> ignore pool; Exp_k.table ());
    ("EXP-L", fun ?pool () -> ignore pool; Exp_l.table ());
    ("EXP-M", fun ?pool () -> ignore pool; Exp_m.table ());
  ]

let all ?pool () = List.map (fun (id, f) -> (id, f ?pool ())) catalog

let ids = List.map fst catalog

let by_id id =
  let target = String.uppercase_ascii id in
  let target = if String.length target <= 2 then "EXP-" ^ target else target in
  List.assoc_opt target catalog

let kernels =
  [
    ("EXP-A", Exp_a.bench_kernel);
    ("EXP-B", Exp_b.bench_kernel);
    ("EXP-C", Exp_c.bench_kernel);
    ("EXP-D", Exp_d.bench_kernel);
    ("EXP-E", Exp_e.bench_kernel);
    ("EXP-F", Exp_f.bench_kernel);
    ("EXP-G", Exp_g.bench_kernel);
    ("EXP-H", Exp_h.bench_kernel);
    ("EXP-I", Exp_i.bench_kernel);
    ("EXP-J", Exp_j.bench_kernel);
    ("EXP-K", Exp_k.bench_kernel);
    ("EXP-L", Exp_l.bench_kernel);
    ("EXP-M", Exp_m.bench_kernel);
  ]

(** EXP-B — Theorem 3.1's shape: at cost [E + o(E)], time grows as
    [Theta(E L)].

    Measures the worst-case meeting time of the simultaneous-start [Cheap]
    (cost exactly [E]) as [L] grows on a fixed oriented ring, fits a line
    in [L], and reports the slope in units of [E]. *)

val table :
  ?pool:Rv_engine.Pool.t -> ?n:int -> ?spaces:int list -> unit -> Rv_util.Table.t

val bench_kernel : unit -> unit

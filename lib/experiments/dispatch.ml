module Ex = Rv_explore.Explorer

type features = { configs : int; build_rounds : int; probe_rounds : int }

type constants = { build_ns : float; scan_ns : float; sim_ns : float }

(* Calibration kernels: two agents walking clockwise on an oriented ring
   at constant separation — they never meet, never cross, so every loop
   runs its full horizon and the measured figure is a clean per-round
   cost.  8192 rounds keeps the whole thing in cache and under a
   millisecond; the minimum of three reps discards scheduler noise.
   Timing uses Rv_obs.Obs.now_us, the tree's one sanctioned clock — the
   result steers only which byte-equivalent kernel runs, never any
   result byte, so determinism (lint R1's concern) is preserved. *)
let calib_rounds = 8192

let time_ns_per_round f =
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Rv_obs.Obs.now_us () in
    f ();
    let dt = Rv_obs.Obs.now_us () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1000.0 /. float_of_int calib_rounds

let calibrate () =
  let g = Rv_graph.Ring.oriented 8 in
  let step _obs = Ex.Move 0 in
  let ta = Rv_sim.Traj.of_schedule ~g ~start:0 ~rounds:calib_rounds step in
  let tb = Rv_sim.Traj.of_schedule ~g ~start:4 ~rounds:calib_rounds step in
  let build_ns =
    time_ns_per_round (fun () ->
        ignore (Rv_sim.Traj.of_schedule ~g ~start:0 ~rounds:calib_rounds step))
  in
  let scan_ns =
    time_ns_per_round (fun () ->
        ignore
          (Rv_sim.Traj.meet ~a:ta ~b:tb ~delay_a:0 ~delay_b:0 ~max_rounds:calib_rounds))
  in
  let sim_ns =
    time_ns_per_round (fun () ->
        ignore
          (Rv_sim.Sim.run ~g ~max_rounds:calib_rounds
             { Rv_sim.Sim.start = 0; delay = 0; step }
             { Rv_sim.Sim.start = 4; delay = 0; step }))
  in
  { build_ns; scan_ns; sim_ns }

let cache : constants option Atomic.t = Atomic.make None

let constants () =
  match Atomic.get cache with
  | Some c -> c
  | None ->
      let c = calibrate () in
      (* First finished measurement wins; a concurrent loser adopts it so
         every caller in the process applies the same model. *)
      if Atomic.compare_and_set cache None (Some c) then c
      else ( match Atomic.get cache with Some c' -> c' | None -> c)

let decide c f =
  let work = float_of_int (max 1 f.configs) *. float_of_int (max 1 f.probe_rounds) in
  (c.build_ns *. float_of_int (max 0 f.build_rounds)) +. (c.scan_ns *. work)
  < c.sim_ns *. work

let use_traj f = decide (constants ()) f

(* Below this many configurations a sweep finishes in tens of
   microseconds on either kernel, and the probe — one full reference
   simulation plus the feature computation — is a measurable fraction of
   the whole sweep: deciding costs more than any decision can save.
   Callers skip the probe and keep the reference path.  The trajectory
   path's wins (3x+) all come from sweeps orders of magnitude past the
   floor. *)
let small_sweep_configs = 128

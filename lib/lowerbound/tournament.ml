type edge_report = {
  a : int;
  b : int;
  eager : int option;
  meeting : int;
  disp_a : int;
  disp_b : int;
}

type t = {
  n : int;
  f : int;
  vertices : int array;
  vertex_vectors : Behaviour.t array;
  mirrored : bool;
  edges : edge_report list;
  fact_3_5_violations : int;
}

type chain_step = { index : int; first : int; second : int; duration : int }

let rec build (trim : Trim.t) =
  Rv_obs.Obs.span ~cat:"lowerbound"
    ~args:[ ("labels", Rv_obs.Json.Int (Array.length trim.Trim.labels)) ]
    "lb.tournament"
    (fun () -> build_inner trim)

and build_inner (trim : Trim.t) =
  let n = trim.Trim.n in
  let f = ((n - 1) + 1) / 2 in
  let heavy_side vectors = Array.map Behaviour.clockwise_heavy vectors in
  let heavy = heavy_side trim.Trim.vectors in
  let count_heavy = Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 heavy in
  let total = Array.length trim.Trim.vectors in
  let mirrored = 2 * count_heavy < total in
  let vectors =
    if mirrored then Array.map Behaviour.mirror trim.Trim.vectors else trim.Trim.vectors
  in
  let heavy = heavy_side vectors in
  let vertices = ref [] and vecs = ref [] in
  Array.iteri
    (fun i h ->
      if h then begin
        vertices := trim.Trim.labels.(i) :: !vertices;
        vecs := vectors.(i) :: !vecs
      end)
    heavy;
  let vertices = Array.of_list (List.rev !vertices) in
  let vecs = Array.of_list (List.rev !vecs) in
  let edges = ref [] and violations = ref 0 in
  for i = 0 to Array.length vertices - 1 do
    for j = i + 1 to Array.length vertices - 1 do
      let va = vecs.(i) and vb = vecs.(j) in
      let meeting =
        match Ring_model.meeting_round ~n va ~start_a:0 vb ~start_b:f with
        | Some r -> r
        | None ->
            (* Trimmed correct algorithms always meet; keep the report
               well-formed for pathological inputs. *)
            max (Array.length va) (Array.length vb)
      in
      let disp_a = Behaviour.displacement va ~upto:meeting in
      let disp_b = Behaviour.displacement vb ~upto:meeting in
      let a_eager = disp_a >= disp_b + f in
      (* B starts F clockwise of A, so B is eager when it out-runs A by F
         in the clockwise direction measured from its own start; the
         displacement comparison is symmetric. *)
      let b_eager = disp_b >= disp_a + f in
      let eager =
        match (a_eager, b_eager) with
        | true, false -> Some vertices.(i)
        | false, true -> Some vertices.(j)
        | true, true | false, false ->
            incr violations;
            None
      in
      edges :=
        { a = vertices.(i); b = vertices.(j); eager; meeting; disp_a; disp_b } :: !edges
    done
  done;
  {
    n;
    f;
    vertices;
    vertex_vectors = vecs;
    mirrored;
    edges = List.rev !edges;
    fact_3_5_violations = !violations;
  }

let beats t x y =
  let rec scan = function
    | [] -> invalid_arg "Tournament.beats: pair not in tournament"
    | e :: rest ->
        if (e.a = x && e.b = y) || (e.a = y && e.b = x) then
          match e.eager with
          | Some w -> w = x
          | None -> e.a = x (* arbitrary but fixed orientation *)
        else scan rest
  in
  scan t.edges

let hamiltonian_path t =
  (* Rédei insertion: place each vertex before the first one it beats. *)
  let insert path v =
    let rec go acc = function
      | [] -> List.rev (v :: acc)
      | u :: rest when beats t v u -> List.rev_append acc (v :: u :: rest)
      | u :: rest -> go (u :: acc) rest
    in
    go [] path
  in
  Array.fold_left insert [] t.vertices

let chain t path =
  let duration_of a b =
    let rec scan = function
      | [] -> invalid_arg "Tournament.chain: pair not in tournament"
      | e :: rest ->
          if (e.a = a && e.b = b) || (e.a = b && e.b = a) then e.meeting else scan rest
    in
    scan t.edges
  in
  let rec go idx = function
    | a :: (b :: _ as rest) ->
        { index = idx; first = min a b; second = max a b; duration = duration_of a b }
        :: go (idx + 1) rest
    | [ _ ] | [] -> []
  in
  go 1 path

let vector_of t ~label =
  let rec scan i =
    if i >= Array.length t.vertices then
      invalid_arg (Printf.sprintf "Tournament.vector_of: label %d not a vertex" label)
    else if t.vertices.(i) = label then t.vertex_vectors.(i)
    else scan (i + 1)
  in
  scan 0

(* In alpha_i = alpha(min, 0, max, F), A_(i+1) is the agent the chain enters
   next; Fact 3.6 bounds its clockwise displacement at the meeting. *)
let check_fact_3_6 t ~phi chain =
  (* The chain lists pairs (first, second) = (min, max) of (A_i, A_(i+1));
     A_(i+1) is whichever of the two is NOT the eager one of the edge. *)
  let eager_of a b =
    let rec scan = function
      | [] -> None
      | e :: rest ->
          if (e.a = a && e.b = b) || (e.a = b && e.b = a) then e.eager else scan rest
    in
    scan t.edges
  in
  let rec walk = function
    | [] -> Ok ()
    | step :: rest -> (
        let next_agent =
          match eager_of step.first step.second with
          | Some w when w = step.first -> step.second
          | Some _ -> step.first
          | None -> step.second
        in
        let disp =
          Behaviour.displacement (vector_of t ~label:next_agent) ~upto:step.duration
        in
        if 2 * disp <= t.f + phi then walk rest
        else
          Error
            (Printf.sprintf
               "Fact 3.6 violated at alpha_%d: disp(A_%d) = %d > (F + phi)/2 = %d/2"
               step.index next_agent disp (t.f + phi)))
  in
  walk chain

let check_fact_3_8 t ~phi chain =
  let rec walk = function
    | [] -> Ok ()
    | step :: rest ->
        if 2 * step.duration >= step.index * (t.f - (3 * phi)) then walk rest
        else
          Error
            (Printf.sprintf "Fact 3.8 violated at alpha_%d: |alpha| = %d < %d*(F-3phi)/2"
               step.index step.duration step.index)
  in
  walk chain

type agent_report = {
  label : int;
  m_x : int;
  block : int;
  nonzero : int;
  implied_cost : int;
  solo_cost : int;
}

type report = {
  n : int;
  block_len : int;
  group_block : int;
  group : agent_report list;
  distinct_progress : bool;
  guaranteed_nonzero : int;
  max_nonzero : int;
  min_implied_cost_of_max : int;
  agents : agent_report list;
}

let analyze ~n ~vectors =
  if n mod 6 <> 0 then invalid_arg "Theorem_fast.analyze: need 6 | n";
  let labels = Array.map fst vectors in
  let vecs = Array.map snd vectors in
  match Trim.run ~n ~labels ~vectors:vecs with
  | Error e -> Error e
  | Ok trim ->
      let block_len = n / 6 in
      let k = Array.length labels in
      let reports = ref [] and progress = Hashtbl.create 16 in
      for i = 0 to k - 1 do
        let v = trim.Trim.vectors.(i) in
        let m_x = trim.Trim.m.(i) in
        let block = Aggregate.blocks_of_round ~n (max 1 m_x) in
        let agg = Aggregate.of_behaviour ~n ~start:0 ~blocks:block v in
        let prog = Progress.define agg in
        Hashtbl.add progress labels.(i) prog;
        let pairs = List.length prog.Progress.pairs in
        reports :=
          {
            label = labels.(i);
            m_x;
            block;
            nonzero = Progress.nonzero prog;
            implied_cost = pairs * ((n - 1) / 6);
            solo_cost = Behaviour.weight v;
          }
          :: !reports
      done;
      let agents = List.rev !reports in
      (* Largest pigeonhole group by block index. *)
      let by_block = Hashtbl.create 16 in
      List.iter
        (fun r ->
          let cur = try Hashtbl.find by_block r.block with Not_found -> [] in
          Hashtbl.replace by_block r.block (r :: cur))
        agents;
      (* Scan buckets in ascending block order so that among equally large
         groups the smallest block index wins, independent of hashing. *)
      let buckets =
        List.sort
          (fun (a, _) (b, _) -> Int.compare a b)
          (Hashtbl.fold (fun b rs acc -> (b, rs) :: acc) by_block [])
      in
      let group_block, group =
        List.fold_left
          (fun (bb, best) (b, rs) ->
            if List.length rs > List.length best then (b, rs) else (bb, best))
          (0, []) buckets
      in
      let group = List.rev group in
      let distinct_progress =
        let progs = List.map (fun r -> Hashtbl.find progress r.label) group in
        let rec pairwise = function
          | [] -> true
          | p :: rest -> List.for_all (fun q -> not (Progress.equal p q)) rest && pairwise rest
        in
        pairwise progs
      in
      let guaranteed_nonzero =
        match group with
        | [] -> 0
        | first :: _ ->
            Facts.fact_3_16_guaranteed_weight ~m:first.block ~count:(List.length group)
      in
      let max_nonzero = List.fold_left (fun acc r -> max acc r.nonzero) 0 agents in
      let min_implied_cost_of_max =
        List.fold_left
          (fun acc r -> if r.nonzero = max_nonzero then max acc r.implied_cost else acc)
          0 agents
      in
      Ok
        {
          n;
          block_len;
          group_block;
          group;
          distinct_progress;
          guaranteed_nonzero;
          max_nonzero;
          min_implied_cost_of_max;
          agents;
        }

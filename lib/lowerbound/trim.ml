type t = {
  n : int;
  labels : int array;
  vectors : Behaviour.t array;
  m : int array;
}

let run ~n ~labels ~vectors =
  if Array.length labels <> Array.length vectors then
    invalid_arg "Trim.run: labels and vectors must align";
  let k = Array.length labels in
  let obs = Rv_obs.Obs.enabled () in
  if obs then begin
    Rv_obs.Obs.begin_span ~cat:"lowerbound"
      ~args:[ ("n", Rv_obs.Json.Int n); ("labels", Rv_obs.Json.Int k) ]
      "lb.trim";
    Array.iter
      (fun v -> Rv_obs.Histogram.observe "lb.vector_rounds" (Array.length v))
      vectors
  end;
  let m = Array.make k 0 in
  let checks = ref 0 in
  let error = ref None in
  (try
     for i = 0 to k - 1 do
       for j = 0 to k - 1 do
         if i <> j then
           for gap = 1 to n - 1 do
             if obs then incr checks;
             match
               Ring_model.meeting_round ~n vectors.(i) ~start_a:0 vectors.(j) ~start_b:gap
             with
             | Some r -> m.(i) <- max m.(i) r
             | None ->
                 error :=
                   Some
                     (Printf.sprintf
                        "Trim.run: labels %d and %d never meet at gap %d on the %d-ring"
                        labels.(i) labels.(j) gap n);
                 raise Exit
           done
       done
     done
   with Exit -> ());
  if obs then begin
    Rv_obs.Counter.count "lb.trim_runs" 1;
    Rv_obs.Counter.count "lb.trim_meeting_checks" !checks;
    Rv_obs.Obs.end_span ()
  end;
  match !error with
  | Some e -> Error e
  | None ->
      let trimmed =
        Array.mapi
          (fun i v ->
            Array.mapi (fun idx x -> if idx >= m.(i) then 0 else x) v)
          vectors
      in
      Ok { n; labels; vectors = trimmed; m }

let index_of t label =
  let rec find i =
    if i >= Array.length t.labels then raise Not_found
    else if t.labels.(i) = label then i
    else find (i + 1)
  in
  find 0

let vector t ~label = t.vectors.(index_of t label)

let m_of t ~label = t.m.(index_of t label)

let positions_within ~n v ~start ~rounds =
  let set = Hashtbl.create 16 in
  Hashtbl.replace set start ();
  let pos = ref start in
  for i = 0 to min rounds (Array.length v) - 1 do
    pos := (((!pos + v.(i)) mod n) + n) mod n;
    Hashtbl.replace set !pos ()
  done;
  set

let fact_3_1 ~n va vb ~start_b =
  let e = n - 1 in
  let horizon = max (Array.length va) (Array.length vb) in
  let rounds =
    match Ring_model.meeting_round ~n va ~start_a:0 vb ~start_b with
    | Some r -> r
    | None -> horizon
  in
  let prefix_stats v =
    let fwd = ref 0 and bck = ref 0 and acc = ref 0 in
    for i = 0 to min rounds (Array.length v) - 1 do
      acc := !acc + v.(i);
      if !acc > !fwd then fwd := !acc;
      if - !acc > !bck then bck := - !acc
    done;
    (!fwd, !bck)
  in
  let fa, ba = prefix_stats va and fb, bb = prefix_stats vb in
  let seg_a = fa + ba and seg_b = fb + bb in
  if seg_a + seg_b >= e then true
  else begin
    (* The fact's witness placement. *)
    let p' = (fa + 1 + bb) mod n in
    if p' = 0 then true (* degenerate tiny ring; premise cannot bite *)
    else begin
      let sa = positions_within ~n va ~start:0 ~rounds in
      let sb = positions_within ~n vb ~start:p' ~rounds in
      (* rv_lint: allow R2 -- boolean OR over membership tests is order-insensitive *)
      let overlap = Hashtbl.fold (fun k () acc -> acc || Hashtbl.mem sb k) sa false in
      not overlap
    end
  end

let fact_3_2 v =
  if Behaviour.clockwise_heavy v then
    Behaviour.weight v >= (2 * Behaviour.back v) + Behaviour.forward v
  else true

let fact_3_4 v =
  let fwd = Behaviour.forward v and bck = Behaviour.back v in
  Array.for_all (fun s -> -bck <= s && s <= fwd) (Behaviour.prefix_sums v)

let fact_3_5 ~n va vb =
  let f = (n - 1 + 1) / 2 in
  let meeting =
    match Ring_model.meeting_round ~n va ~start_a:0 vb ~start_b:f with
    | Some r -> r
    | None -> max (Array.length va) (Array.length vb)
  in
  let da = Behaviour.displacement va ~upto:meeting in
  let db = Behaviour.displacement vb ~upto:meeting in
  match (da >= db + f, db >= da + f) with
  | true, false -> `One_eager `A
  | false, true -> `One_eager `B
  | true, true | false, false -> `Violated

let fact_3_9 ~n ~start v =
  let block_len = n / 6 in
  let positions = Ring_model.positions ~n v ~start in
  let total_blocks = (Array.length v + block_len - 1) / block_len in
  let ok = ref true in
  for b = 0 to total_blocks - 1 do
    let start_pos = if b = 0 then start else positions.((b * block_len) - 1) in
    let sector = Aggregate.sector_of ~n start_pos in
    for r = b * block_len to min (((b + 1) * block_len) - 1) (Array.length v - 1) do
      let s = Aggregate.sector_of ~n positions.(r) in
      let diff = (s - sector + 6) mod 6 in
      if diff <> 0 && diff <> 1 && diff <> 5 then ok := false
    done
  done;
  !ok

let fact_3_10 ~n ~blocks v =
  Aggregate.of_behaviour ~n ~start:0 ~blocks v
  = Aggregate.of_behaviour ~n ~start:(n / 2) ~blocks v

(* Do x (from 0) and y (from n/2) share a node in any round of blocks
   [from_block..to_block]? *)
let meet_in_blocks ~n vx vy ~from_block ~to_block =
  let block_len = n / 6 in
  let lo = ((from_block - 1) * block_len) + 1 and hi = to_block * block_len in
  let px = Ring_model.positions ~n vx ~start:0 in
  let py = Ring_model.positions ~n vy ~start:(n / 2) in
  let at arr r start = if r - 1 < Array.length arr then arr.(r - 1) else if Array.length arr = 0 then start else arr.(Array.length arr - 1) in
  let met = ref false in
  for r = lo to hi do
    if at px r 0 = at py r (n / 2) then met := true
  done;
  !met

let fact_3_11 ~n vx vy ~from_block ~to_block =
  let blocks = to_block in
  let aggx = Aggregate.of_behaviour ~n ~start:0 ~blocks vx in
  let aggy = Aggregate.of_behaviour ~n ~start:0 ~blocks vy in
  let premise =
    let ok = ref true in
    for k = from_block to to_block do
      if abs (Aggregate.surplus_range aggx ~lo:from_block ~hi:k) > 1 then ok := false;
      if abs (Aggregate.surplus_range aggy ~lo:from_block ~hi:k) > 1 then ok := false
    done;
    (* The fact additionally requires the agents to begin block
       [from_block] in opposite sectors. *)
    let block_len = n / 6 in
    let pos_at arr r dflt =
      if r = 0 then dflt
      else if r - 1 < Array.length arr then arr.(r - 1)
      else if Array.length arr = 0 then dflt
      else arr.(Array.length arr - 1)
    in
    let px = Ring_model.positions ~n vx ~start:0 in
    let py = Ring_model.positions ~n vy ~start:(n / 2) in
    let r0 = (from_block - 1) * block_len in
    let sx = Aggregate.sector_of ~n (pos_at px r0 0) in
    let sy = Aggregate.sector_of ~n (pos_at py r0 (n / 2)) in
    !ok && (sy - sx + 6) mod 6 = 3
  in
  if not premise then true else not (meet_in_blocks ~n vx vy ~from_block ~to_block)

let fact_3_15 ~n ~blocks vx vy =
  let aggx = Aggregate.of_behaviour ~n ~start:0 ~blocks vx in
  let aggy = Aggregate.of_behaviour ~n ~start:0 ~blocks vy in
  let px = Progress.define aggx and py = Progress.define aggy in
  if not (Progress.equal px py) then true
  else not (meet_in_blocks ~n vx vy ~from_block:1 ~to_block:blocks)

let fact_3_16_guaranteed_weight ~m ~count =
  (* vectors_up_to k = number of length-m {-1,0,1} vectors with at most k
     non-zero entries = sum_{j=0..k} C(m,j) * 2^j, saturating. *)
  let sat_add a b = if a > max_int - b then max_int else a + b in
  let sat_mul a b = if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b in
  let pow2 j = if j >= 62 then max_int else 1 lsl j in
  let vectors_up_to k =
    let acc = ref 0 in
    for j = 0 to k do
      acc := sat_add !acc (sat_mul (Rv_util.Combinat.binomial m j) (pow2 j))
    done;
    !acc
  in
  let rec search k =
    if k > m then m
    else if vectors_up_to (k - 1) >= count then k - 1
    else if vectors_up_to k >= count then k
    else search (k + 1)
  in
  max 0 (search 0)

let fact_3_17_bound ~n (p : Progress.t) =
  let k = List.length p.Progress.pairs in
  k * ((n - 1) / 6)

(** The pretty console exporter: aggregates the current event buffer,
    counter registry, histogram registry (and optionally a GC delta) into
    one human-readable metrics summary — what [rv sweep --metrics] and
    [rv exp --metrics] append to a run. *)

val summary : ?gc:Gc_snapshot.t -> unit -> string
(** Sections, each omitted when empty: spans aggregated by
    (category, name) with count/total/mean/max; per-lane busy time for
    engine-pool lanes; counters; histograms; GC delta; and a note when
    events were dropped or unbalanced. *)

let meta ~name ~tid args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("ts", Json.Float 0.);
      ("pid", Json.Int Obs.pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let event_json (e : Obs.event) =
  let round r key = if r >= 0 then [ (key, Json.Int r) ] else [] in
  let base =
    [
      ("name", Json.Str e.Obs.name);
      ("cat", Json.Str (if e.Obs.cat = "" then "default" else e.Obs.cat));
      ("ts", Json.Float e.Obs.ts_us);
      ("pid", Json.Int Obs.pid);
      ("tid", Json.Int e.Obs.tid);
    ]
  in
  match e.Obs.kind with
  | Obs.Span { dur_us; round_end } ->
      Json.Obj
        (base
        @ [
            ("ph", Json.Str "X");
            ("dur", Json.Float dur_us);
            ( "args",
              Json.Obj
                (round e.Obs.round "round_begin" @ round round_end "round_end"
                @ e.Obs.args) );
          ])
  | Obs.Instant ->
      Json.Obj
        (base
        @ [
            ("ph", Json.Str "i");
            ("s", Json.Str "t");
            ("args", Json.Obj (round e.Obs.round "round" @ e.Obs.args));
          ])

let events_json ?(lane_names = []) events =
  let tids =
    List.sort_uniq Int.compare (List.map (fun (e : Obs.event) -> e.Obs.tid) events)
  in
  let lane_name tid =
    match List.assoc_opt tid lane_names with
    | Some n -> n
    | None -> Obs.lane_name tid
  in
  let metas =
    meta ~name:"process_name" ~tid:0 [ ("name", Json.Str "rv") ]
    :: List.map
         (fun tid ->
           meta ~name:"thread_name" ~tid [ ("name", Json.Str (lane_name tid)) ])
         tids
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metas @ List.map event_json events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_json () = events_json (Obs.events ())

let write oc = output_string oc (Json.to_string (to_json ()) ^ "\n")

let write_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc)

type typ = Counter_t | Gauge_t | Summary_t

type sample = { labels : (string * string) list; value : float }

type family = { fname : string; help : string; typ : typ; samples : sample list }

let typ_string = function
  | Counter_t -> "counter"
  | Gauge_t -> "gauge"
  | Summary_t -> "summary"

(* Label values escape backslash, double quote, and newline; HELP text
   escapes backslash and newline (exposition format rules). *)
let escape ~quote s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' when quote -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    string_of_int (int_of_float v)
  else if Float.is_nan v then "NaN"
  else if Float.equal v Float.infinity then "+Inf"
  else if Float.equal v Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" v

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
      let labels =
        List.sort (fun (a, _) (b, _) -> String.compare a b) labels
      in
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape ~quote:true v))
             labels)
      ^ "}"

let sample_line fname s =
  Printf.sprintf "%s%s %s" fname (label_string s.labels) (value_string s.value)

let render_family buf f =
  Buffer.add_string buf
    (Printf.sprintf "# HELP %s %s\n" f.fname (escape ~quote:false f.help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f.fname (typ_string f.typ));
  (* Stable output: samples sorted by their rendered label string. *)
  let lines = List.map (sample_line f.fname) f.samples in
  let lines = List.sort String.compare lines in
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    lines

let render families =
  let families =
    List.sort (fun a b -> String.compare a.fname b.fname) families
  in
  let buf = Buffer.create 4096 in
  List.iter (render_family buf) families;
  Buffer.contents buf

let single ?(labels = []) name help typ value =
  { fname = name; help; typ; samples = [ { labels; value } ] }

(** Sliding-window latency/size statistics: a ring of one-second slots,
    each a log2-bucket histogram (same bucket geometry as {!Histogram}),
    merged on demand over a trailing horizon.

    Unlike {!Histogram}, windows are {b always on}: {!observe} performs a
    handful of atomic operations unconditionally (no {!Obs.enabled}
    check) so a server can keep "p99 over the last minute" live without
    opting into tracing.  The caller supplies wall time as an integer
    second ([now_s]) — both so hot paths reuse a timestamp they already
    took and so tests can drive synthetic clocks deterministically.

    A slot is recycled when its second comes around again ([ring size >
    max horizon + slack]).  The recycle is a compare-and-set on the
    slot's epoch followed by a clear; an observation racing the clear at
    a second boundary can be lost or misplaced by one slot.  That bounds
    the error to a few samples per rotation — acceptable for monitoring
    statistics, and the price of staying lock-free on the observe path. *)

type t

type stats = {
  w_count : int;  (** observations inside the horizon *)
  w_sum : int;
  w_max : int;
  w_p50 : int;
  w_p90 : int;
  w_p99 : int;
      (** percentile upper bounds at log2-bucket resolution, clamped to
          [w_max] (same contract as {!Histogram.percentile}) *)
}

val empty_stats : stats

val max_horizon_s : int
(** Largest supported horizon with the default ring (300 s). *)

val create : ?slots:int -> string -> t
(** [create name] makes a window whose ring covers {!max_horizon_s} plus
    slack; [?slots] overrides the ring size (floored to a safe minimum). *)

val name : t -> string

val observe : t -> now_s:int -> int -> unit
(** Record value [v] in the slot for second [now_s].  Unconditional. *)

val stats : t -> now_s:int -> horizon_s:int -> stats
(** Merge the slots covering [(now_s - horizon_s, now_s]] and summarize.
    [horizon_s] is clamped to the ring capacity. *)

val stats_many : t list -> now_s:int -> horizon_s:int -> stats
(** Merged statistics over several windows, as if every observation had
    gone to a single window — lets a server keep only fine-grained
    windows hot (one {!observe} per event) and derive the aggregate at
    read time.  [stats t] = [stats_many [t]]. *)

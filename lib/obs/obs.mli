(** Span-based tracing with a no-op fast path.

    The whole stack (simulator, exploration, lower-bound pipelines, the
    multicore engine) calls into this module unconditionally; every entry
    point first reads one atomic flag and returns immediately when
    instrumentation is {e disabled} — the default — so hot sweep loops pay
    a branch, not an allocation.  Enabling ({!set_enabled}) turns the same
    calls into events in a process-global, mutex-protected buffer that the
    exporters ({!Export_console}, {!Export_jsonl}, {!Export_chrome}) read
    back.

    {b Spans} are begin/end pairs with a category, a name, and key/value
    arguments; {!span} brackets a closure.  Each span lives on a {e lane}
    (Chrome's "tid"): by default the current domain, so the engine pool's
    workers naturally get one lane each; {!set_lane} redirects subsequent
    spans to a synthetic lane (the simulator gives each agent its own lane
    in deep mode, see {!set_deep}).  Spans on one lane must nest; an
    {!end_span} without a matching begin is counted, not fatal.

    {b Deep mode} ({!set_deep}) additionally opts into per-round detail:
    the simulator publishes a logical round clock ({!set_round}) that is
    attached to every event, and the schedule/explorer layers emit one
    span per algorithm phase.  Sweeps with metrics keep deep mode off and
    pay only per-run costs. *)

type arg = string * Json.t

type kind =
  | Span of { dur_us : float; round_end : int }
      (** [round_end] is the logical round at [end_span]; [-1] if unset. *)
  | Instant

type event = {
  name : string;
  cat : string;
  ts_us : float;  (** microseconds since {!reset} (or process start) *)
  tid : int;  (** lane: domain id, or a synthetic lane from {!new_lane} *)
  round : int;  (** logical round at span begin / instant; [-1] if unset *)
  args : arg list;
  kind : kind;
}

val pid : int

(** {1 Switches} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val deep : unit -> bool
(** True only when both enabled and deep mode are on. *)

val set_deep : bool -> unit

(** {1 Clock and lanes} *)

val now_us : unit -> float
(** Microseconds since {!reset} (or process start).  Monotone in practice
    for our uses (single clock source, short runs). *)

val set_round : int -> unit
(** Publish the simulator's logical round for this domain; attached to
    subsequent events until changed.  Negative clears. *)

val new_lane : string -> int
(** Allocate a fresh named lane (rendered as a Chrome thread).  Ids never
    collide with domain ids. *)

val lane_name : int -> string
(** Display name for a lane: its registered name, or ["domain-<id>"]. *)

val set_lane : int -> unit
(** Route subsequent spans/instants on this domain to the given lane. *)

val clear_lane : unit -> unit
(** Back to the default lane (the current domain's id). *)

(** {1 Recording} *)

val begin_span : ?cat:string -> ?args:arg list -> string -> unit
val end_span : unit -> unit

val span : ?cat:string -> ?args:arg list -> string -> (unit -> 'a) -> 'a
(** [span name f] brackets [f ()] in a begin/end pair (ended on raise
    too); when disabled it is exactly [f ()]. *)

val instant : ?cat:string -> ?args:arg list -> string -> unit

(** {1 Reading back} *)

val events : unit -> event list
(** Snapshot, in begin-timestamp order.  Spans still open on the {e
    calling} domain are finalized first (closed at the current time with
    an ["unfinished": true] argument) — call this after the instrumented
    region, from the domain that ran it. *)

val event_count : unit -> int
val dropped : unit -> int
(** Events discarded because the buffer hit {!set_max_events}. *)

val unbalanced_ends : unit -> int
(** {!end_span} calls that found no open span on their lane. *)

val set_max_events : int -> unit
(** Buffer cap (default 1_000_000); excess events are dropped, counted. *)

val reset : unit -> unit
(** Clear events and counters above, restart the clock.  Does not touch
    {!Counter}/{!Histogram} registries (they have their own [reset]). *)

type arg = string * Json.t

type kind = Span of { dur_us : float; round_end : int } | Instant

type event = {
  name : string;
  cat : string;
  ts_us : float;
  tid : int;
  round : int;
  args : arg list;
  kind : kind;
}

let pid = Unix.getpid ()

(* Switches.  [enabled_flag] is the fast path: every public entry point
   reads it first and bails, so disabled instrumentation costs one atomic
   load and a branch. *)

let enabled_flag = Atomic.make false
let deep_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let deep () = Atomic.get enabled_flag && Atomic.get deep_flag
let set_deep b = Atomic.set deep_flag b

(* Clock: wall microseconds relative to the last [reset].  One shared
   float cell; torn reads are impossible on 64-bit OCaml (boxed float ref
   swapped atomically by [reset], which is called only at quiescence). *)

(* rv_lint: allow R1 -- the obs clock is wall time by design; timestamps feed traces, never sweep results *)
(* rv_lint: allow R3 -- single writer: reset() swaps the boxed float only at quiescence *)
let epoch = ref (Unix.gettimeofday ())

(* rv_lint: allow R1 -- span timestamps are wall time by design *)
let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

(* Per-domain state: lane override, logical round, and one open-span
   stack per lane (the two agent lanes of a deep-mode simulation run
   interleave on one domain, so stacks must be lane-keyed). *)

type open_span = { o_name : string; o_cat : string; o_ts : float; o_round : int; o_args : arg list }

type dstate = {
  mutable lane : int;  (* -1 = use the domain id *)
  mutable round : int;  (* -1 = unset *)
  stacks : (int, open_span list ref) Hashtbl.t;
}

let dls =
  Domain.DLS.new_key (fun () -> { lane = -1; round = -1; stacks = Hashtbl.create 4 })

let effective_lane st = if st.lane >= 0 then st.lane else (Domain.self () :> int)

let stack_of st lane =
  match Hashtbl.find_opt st.stacks lane with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.add st.stacks lane s;
      s

let set_round r =
  if enabled () then (Domain.DLS.get dls).round <- (if r < 0 then -1 else r)

let set_lane l = if enabled () then (Domain.DLS.get dls).lane <- l
let clear_lane () = if enabled () then (Domain.DLS.get dls).lane <- -1

(* Synthetic lanes.  Ids start far above any plausible domain id. *)

let lane_mutex = Mutex.create ()

(* rv_lint: allow R3 -- every access goes through lane_mutex *)
let lane_next = ref 1000

(* rv_lint: allow R3 -- every access goes through lane_mutex *)
let lane_names : (int, string) Hashtbl.t = Hashtbl.create 8

let new_lane name =
  Mutex.lock lane_mutex;
  let id = !lane_next in
  incr lane_next;
  Hashtbl.replace lane_names id name;
  Mutex.unlock lane_mutex;
  id

let lane_name id =
  Mutex.lock lane_mutex;
  let n = Hashtbl.find_opt lane_names id in
  Mutex.unlock lane_mutex;
  match n with Some n -> n | None -> Printf.sprintf "domain-%d" id

(* The event buffer: global, mutex-protected, capped. *)

let buf_mutex = Mutex.create ()

(* rv_lint: allow R3 -- every access goes through buf_mutex *)
let buf : event list ref = ref []

(* rv_lint: allow R3 -- every access goes through buf_mutex *)
let buf_len = ref 0

(* rv_lint: allow R3 -- written once at configuration time, before workers start *)
let max_events = ref 1_000_000
let dropped_count = Atomic.make 0
let unbalanced = Atomic.make 0

let push ev =
  Mutex.lock buf_mutex;
  if !buf_len < !max_events then begin
    buf := ev :: !buf;
    incr buf_len
  end
  else Atomic.incr dropped_count;
  Mutex.unlock buf_mutex

let set_max_events n = max_events := max 0 n

let begin_span ?(cat = "") ?(args = []) name =
  if enabled () then begin
    let st = Domain.DLS.get dls in
    let lane = effective_lane st in
    let stack = stack_of st lane in
    stack :=
      { o_name = name; o_cat = cat; o_ts = now_us (); o_round = st.round; o_args = args }
      :: !stack
  end

let close_span st lane sp ~extra =
  push
    {
      name = sp.o_name;
      cat = sp.o_cat;
      ts_us = sp.o_ts;
      tid = lane;
      round = sp.o_round;
      args = sp.o_args @ extra;
      kind = Span { dur_us = now_us () -. sp.o_ts; round_end = st.round };
    }

let end_span () =
  if enabled () then begin
    let st = Domain.DLS.get dls in
    let lane = effective_lane st in
    let stack = stack_of st lane in
    match !stack with
    | [] -> Atomic.incr unbalanced
    | sp :: rest ->
        stack := rest;
        close_span st lane sp ~extra:[]
  end

let span ?cat ?args name f =
  if not (enabled ()) then f ()
  else begin
    begin_span ?cat ?args name;
    Fun.protect ~finally:end_span f
  end

let instant ?(cat = "") ?(args = []) name =
  if enabled () then begin
    let st = Domain.DLS.get dls in
    push
      {
        name;
        cat;
        ts_us = now_us ();
        tid = effective_lane st;
        round = st.round;
        args;
        kind = Instant;
      }
  end

let events () =
  (* Finalize this domain's open spans so exporters always see complete
     spans, even when a run ended mid-phase (e.g. meeting mid-walk). *)
  let st = Domain.DLS.get dls in
  (* Close in ascending lane order so the synthetic close timestamps (and
     hence the exported event order) do not leak Hashtbl bucket order. *)
  let lanes =
    List.sort Int.compare (Hashtbl.fold (fun lane _ acc -> lane :: acc) st.stacks [])
  in
  List.iter
    (fun lane ->
      let stack = Hashtbl.find st.stacks lane in
      List.iter
        (fun sp -> close_span st lane sp ~extra:[ ("unfinished", Json.Bool true) ])
        !stack;
      stack := [])
    lanes;
  Mutex.lock buf_mutex;
  let evs = !buf in
  Mutex.unlock buf_mutex;
  List.stable_sort (fun a b -> Float.compare a.ts_us b.ts_us) (List.rev evs)

let event_count () =
  Mutex.lock buf_mutex;
  let n = !buf_len in
  Mutex.unlock buf_mutex;
  n

let dropped () = Atomic.get dropped_count
let unbalanced_ends () = Atomic.get unbalanced

let reset () =
  Mutex.lock buf_mutex;
  buf := [];
  buf_len := 0;
  Mutex.unlock buf_mutex;
  Atomic.set dropped_count 0;
  Atomic.set unbalanced 0;
  let st = Domain.DLS.get dls in
  Hashtbl.reset st.stacks;
  st.lane <- -1;
  st.round <- -1;
  (* rv_lint: allow R1 -- re-anchors the wall-clock epoch at quiescence *)
  epoch := Unix.gettimeofday ()

type t = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

let take () =
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    heap_words = s.Gc.heap_words;
    top_heap_words = s.Gc.top_heap_words;
  }

let diff ~before ~after =
  {
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    major_words = after.major_words -. before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    compactions = after.compactions - before.compactions;
    heap_words = after.heap_words;
    top_heap_words = after.top_heap_words;
  }

let to_json t =
  Json.Obj
    [
      ("minor_words", Json.Float t.minor_words);
      ("promoted_words", Json.Float t.promoted_words);
      ("major_words", Json.Float t.major_words);
      ("minor_collections", Json.Int t.minor_collections);
      ("major_collections", Json.Int t.major_collections);
      ("compactions", Json.Int t.compactions);
      ("heap_words", Json.Int t.heap_words);
      ("top_heap_words", Json.Int t.top_heap_words);
    ]

let to_string t =
  Printf.sprintf
    "  minor words       %14.0f\n\
     \  promoted words    %14.0f\n\
     \  major words       %14.0f\n\
     \  minor collections %14d\n\
     \  major collections %14d\n\
     \  compactions       %14d\n\
     \  heap words        %14d\n\
     \  top heap words    %14d"
    t.minor_words t.promoted_words t.major_words t.minor_collections t.major_collections
    t.compactions t.heap_words t.top_heap_words

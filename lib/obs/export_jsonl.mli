(** The JSONL exporter: one self-describing JSON object per line, in the
    spirit of the engine's [Record]/[Sink] streams.  Lines come in four
    shapes, discriminated by ["type"]:

    - [{"type":"span","name","cat","ts_us","dur_us","pid","tid","round",
       "round_end","args":{...}}]
    - [{"type":"instant","name","cat","ts_us","pid","tid","round",
       "args":{...}}]
    - [{"type":"counter","name","value"}]
    - [{"type":"histogram","name","count","sum","max",
       "buckets":[[lo,hi,count],...]}]

    [round] fields are omitted when no logical round was set. *)

val event_json : Obs.event -> Json.t

val lines : unit -> string list
(** The full stream for the current buffer and registries: all events in
    timestamp order, then counters, then histograms. *)

val write : out_channel -> unit
(** [lines], newline-terminated, to a channel. *)

(** Named last-value gauges, atomic and process-global.

    Same registry pattern as {!Counter}, but {!set} {e replaces} the
    value instead of accumulating: gauges carry sampled state (heap
    words, queue depth, registry size, index generation) published by a
    periodic sampler.  Sets are unconditional — whether to sample at all
    is the sampler's decision, not a per-call {!Obs.enabled} check. *)

type t

val find : string -> t
(** Find or create.  Use to hoist the registry lookup out of a loop. *)

val set : t -> int -> unit
(** Unconditional atomic store. *)

val set_name : string -> int -> unit
(** [set_name name v] is [set (find name) v]. *)

val value : t -> int
val name : t -> string

val all : unit -> (string * int) list
(** Every registered gauge with its current value, sorted by name. *)

val reset : unit -> unit
(** Drop the whole registry. *)

type t = { name : string; value : int Atomic.t }

let registry_mutex = Mutex.create ()

(* rv_lint: allow R3 -- every access goes through registry_mutex *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let find name =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { name; value = Atomic.make 0 } in
        Hashtbl.add registry name c;
        c
  in
  Mutex.unlock registry_mutex;
  c

let add t k = ignore (Atomic.fetch_and_add t.value k)
let count name k = if Obs.enabled () then add (find name) k
let value t = Atomic.get t.value
let name t = t.name

let all () =
  Mutex.lock registry_mutex;
  let xs = Hashtbl.fold (fun name c acc -> (name, Atomic.get c.value) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) xs

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.reset registry;
  Mutex.unlock registry_mutex

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* Escaping writes straight into the output buffer; the common case — no
   character needs escaping — is a single scan plus one [add_string],
   with no intermediate allocation (serve replies render one of these
   per field, so this is on the index/cache hit path). *)
let needs_escape s =
  let n = String.length s in
  let rec go i =
    i < n
    &&
    match String.unsafe_get s i with
    | '"' | '\\' -> true
    | c when Char.code c < 0x20 -> true
    | _ -> go (i + 1)
  in
  go 0

let add_escaped b s =
  if not (needs_escape s) then Buffer.add_string b s
  else
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

let float_to_string f =
  if
    (not (Float.is_finite f))  (* nan and both infinities serialise as 0 *)
    || (Float.is_integer f && Float.abs f > 1e18)
  then "0"
  else if Float.is_integer f then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

(* Serve replies are mostly small non-negative ints; rendering them from
   a fixed table skips a string_of_int allocation per field. *)
let small_int_strings = Array.init 1024 string_of_int

let add_int b i =
  if i >= 0 && i < 1024 then Buffer.add_string b (Array.unsafe_get small_int_strings i)
  else Buffer.add_string b (string_of_int i)

let to_string t =
  let b = Buffer.create 512 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> add_int b i
    | Float f -> Buffer.add_string b (float_to_string f)
    | Str s ->
        Buffer.add_char b '"';
        add_escaped b s;
        Buffer.add_char b '"'
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            add_escaped b k;
            Buffer.add_string b "\":";
            go v)
          kvs;
        Buffer.add_char b '}'
  in
  go t;
  Buffer.contents b

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at position %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("bad literal, expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          incr pos;
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail ("bad \\u escape " ^ hex)
              in
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else fail "non-ASCII \\u escapes are not supported"
          | c -> fail (Printf.sprintf "unknown escape \\%c" c));
          go ()
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      if !pos = d0 then fail "expected digits"
    in
    digits ();
    let fractional = peek () = Some '.' in
    if fractional then begin
      incr pos;
      digits ()
    end;
    let exponent = match peek () with Some ('e' | 'E') -> true | _ -> false in
    if exponent then begin
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    end;
    let text = String.sub s start (!pos - start) in
    if fractional || exponent then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
    | None -> fail "unexpected end of input"
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    Ok v
  with Bad msg -> Error msg

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None

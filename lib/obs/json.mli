(** A minimal JSON tree: enough for the observability exporters (Chrome
    trace-event files, JSONL metric streams) and for parsing back what we
    emit in tests and smoke checks.  Not a general-purpose JSON library —
    numbers are OCaml [int]/[float], strings are bytes (no unicode
    normalization), and object keys keep emission order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace), valid JSON. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a position-annotated
    message.  Accepts any whitespace, nested values, exponents, and the
    escape sequences {!to_string} emits ([\uXXXX] is ASCII-only). *)

val member : string -> t -> t option
(** [member k (Obj _)] is the first binding of [k]; [None] otherwise. *)

val to_int : t -> int option
(** [Int] directly; [Float] when integral. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option

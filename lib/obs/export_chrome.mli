(** The Chrome trace-event exporter.  Produces the JSON object format
    ({["traceEvents"]} array) understood by Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and chrome://tracing:
    complete spans as [ph:"X"] with [ts]/[dur] in microseconds, instants
    as [ph:"i"], plus [ph:"M"] metadata naming the process and one thread
    lane per domain / synthetic lane (engine workers and, in deep mode,
    the two agents each get their own lane). *)

val to_json : unit -> Json.t
(** The whole trace for the current event buffer. *)

val write : out_channel -> unit

val write_file : string -> unit

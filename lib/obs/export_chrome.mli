(** The Chrome trace-event exporter.  Produces the JSON object format
    ({["traceEvents"]} array) understood by Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and chrome://tracing:
    complete spans as [ph:"X"] with [ts]/[dur] in microseconds, instants
    as [ph:"i"], plus [ph:"M"] metadata naming the process and one thread
    lane per domain / synthetic lane (engine workers and, in deep mode,
    the two agents each get their own lane). *)

val events_json : ?lane_names:(int * string) list -> Obs.event list -> Json.t
(** Render an explicit event list (e.g. synthetic events rebuilt from a
    flight-recorder dump).  [lane_names] overrides the display name of a
    lane; unlisted lanes fall back to {!Obs.lane_name}. *)

val to_json : unit -> Json.t
(** The whole trace for the current event buffer
    ([events_json (Obs.events ())]). *)

val write : out_channel -> unit

val write_file : string -> unit

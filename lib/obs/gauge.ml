type t = { name : string; value : int Atomic.t }

let registry_mutex = Mutex.create ()

(* rv_lint: allow R3 -- every access goes through registry_mutex *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let find name =
  Mutex.lock registry_mutex;
  let g =
    match Hashtbl.find_opt registry name with
    | Some g -> g
    | None ->
        let g = { name; value = Atomic.make 0 } in
        Hashtbl.add registry name g;
        g
  in
  Mutex.unlock registry_mutex;
  g

let set t v = Atomic.set t.value v
let set_name name v = set (find name) v
let value t = Atomic.get t.value
let name t = t.name

let all () =
  Mutex.lock registry_mutex;
  let xs = Hashtbl.fold (fun name g acc -> (name, Atomic.get g.value) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) xs

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.reset registry;
  Mutex.unlock registry_mutex

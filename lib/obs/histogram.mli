(** Log-bucketed histograms for time/cost/latency distributions.

    Buckets are powers of two: bucket 0 collects values [<= 0], bucket
    [i >= 1] collects the range [2^(i-1) .. 2^i - 1].  Observation is an
    atomic increment on the bucket plus atomic sum/count/max updates, so
    worker domains can observe concurrently; like {!Counter}, histograms
    live in a process-global registry keyed by name and {!observe} is a
    no-op when instrumentation is disabled. *)

type t

val nbuckets : int
(** Number of log2 buckets (shared with {!Window}). *)

val bucket_of : int -> int
(** [bucket_of v] is the bucket index of [v]: [0] for [v <= 0], else
    [1 + floor (log2 v)] capped at [nbuckets - 1]. *)

val find : string -> t
val observe_t : t -> int -> unit
(** Unconditional (no enabled check — the caller hoisted it). *)

val observe : string -> int -> unit
(** No-op when disabled, else [observe_t (find name) v]. *)

val name : t -> string
val count : t -> int
val sum : t -> int
val mean : t -> float
val max_value : t -> int
(** Largest observed value ([0] when empty). *)

val percentile : t -> float -> int
(** [percentile t p] ([0. <= p <= 1.]) is an upper bound on the [p]-th
    quantile of the observed values, at the log-bucket resolution:
    the upper bound of the smallest bucket covering rank [ceil (p*n)],
    clamped to {!max_value}.  [0] when empty. *)

val bucket_bounds : int -> int * int
(** [bucket_bounds i] is the inclusive value range of bucket [i]
    (bucket 0 is [(min_int, 0)]). *)

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending. *)

val all : unit -> t list
(** Every registered histogram, sorted by name. *)

val reset : unit -> unit

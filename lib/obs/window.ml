type slot = {
  epoch : int Atomic.t;  (* the absolute second this slot holds; -1 = empty *)
  cells : int Atomic.t array;  (* Histogram.nbuckets log2 buckets *)
  s_n : int Atomic.t;
  s_sum : int Atomic.t;
  s_max : int Atomic.t;
}

type t = { name : string; slots : slot array }

type stats = {
  w_count : int;
  w_sum : int;
  w_max : int;
  w_p50 : int;
  w_p90 : int;
  w_p99 : int;
}

let empty_stats =
  { w_count = 0; w_sum = 0; w_max = 0; w_p50 = 0; w_p90 = 0; w_p99 = 0 }

let max_horizon_s = 300

(* Enough slots that the largest horizon (5m) plus a margin of slack
   seconds never wraps onto a slot that is still inside the horizon. *)
let default_slots = max_horizon_s + 30

let create ?(slots = default_slots) name =
  {
    name;
    slots =
      Array.init (max slots (max_horizon_s + 2)) (fun _ ->
          {
            epoch = Atomic.make (-1);
            cells = Array.init Histogram.nbuckets (fun _ -> Atomic.make 0);
            s_n = Atomic.make 0;
            s_sum = Atomic.make 0;
            s_max = Atomic.make 0;
          });
  }

let name t = t.name

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let observe t ~now_s v =
  let now_s = max 0 now_s in
  let slot = t.slots.(now_s mod Array.length t.slots) in
  let e = Atomic.get slot.epoch in
  if e <> now_s then
    (* First observer of a new second claims the slot and clears it.  A
       racing observer straddling the boundary may land its increment in
       the cleared slot or lose it to the clear — at most a handful of
       samples per rotation, acceptable for monitoring stats. *)
    if Atomic.compare_and_set slot.epoch e now_s then begin
      Array.iter (fun c -> Atomic.set c 0) slot.cells;
      Atomic.set slot.s_n 0;
      Atomic.set slot.s_sum 0;
      Atomic.set slot.s_max 0
    end;
  ignore (Atomic.fetch_and_add slot.cells.(Histogram.bucket_of v) 1);
  ignore (Atomic.fetch_and_add slot.s_n 1);
  ignore (Atomic.fetch_and_add slot.s_sum v);
  atomic_max slot.s_max v

let percentile_of_cells cells ~n ~maxv p =
  if n = 0 then 0
  else begin
    let p = Float.min 1. (Float.max 0. p) in
    let rank = max 1 (int_of_float (ceil (p *. float_of_int n))) in
    let rec go i acc =
      if i >= Histogram.nbuckets then maxv
      else begin
        let acc = acc + cells.(i) in
        if acc >= rank then
          if i = 0 then 0 else min (snd (Histogram.bucket_bounds i)) maxv
        else go (i + 1) acc
      end
    in
    go 0 0
  end

let stats_many ts ~now_s ~horizon_s =
  let cells = Array.make Histogram.nbuckets 0 in
  let n = ref 0 and sum = ref 0 and maxv = ref 0 in
  List.iter
    (fun t ->
      let horizon_s = min (max 1 horizon_s) (Array.length t.slots - 2) in
      let lo = now_s - horizon_s in
      Array.iter
        (fun slot ->
          let e = Atomic.get slot.epoch in
          if e > lo && e <= now_s then begin
            for i = 0 to Histogram.nbuckets - 1 do
              cells.(i) <- cells.(i) + Atomic.get slot.cells.(i)
            done;
            n := !n + Atomic.get slot.s_n;
            sum := !sum + Atomic.get slot.s_sum;
            maxv := max !maxv (Atomic.get slot.s_max)
          end)
        t.slots)
    ts;
  (* Clearing a slot races its own counters, so the bucket total and s_n
     can disagree transiently at a rotation; trust the buckets. *)
  let n = max !n (Array.fold_left ( + ) 0 cells) in
  {
    w_count = n;
    w_sum = !sum;
    w_max = !maxv;
    w_p50 = percentile_of_cells cells ~n ~maxv:!maxv 0.5;
    w_p90 = percentile_of_cells cells ~n ~maxv:!maxv 0.9;
    w_p99 = percentile_of_cells cells ~n ~maxv:!maxv 0.99;
  }

let stats t ~now_s ~horizon_s = stats_many [ t ] ~now_s ~horizon_s

(** Named monotonic counters, atomic and process-global.

    Counters live in a registry keyed by name, so call sites need no
    setup: [Counter.count "sim.crossings" k] finds-or-creates the counter
    and adds [k] — or returns immediately when instrumentation is off
    (the {!Obs.enabled} fast path).  Increments are [Atomic.fetch_and_add],
    safe from any engine-pool worker domain. *)

type t

val find : string -> t
(** Find or create.  Use to hoist the registry lookup out of a loop. *)

val add : t -> int -> unit
(** Unconditional atomic add (no enabled check — the caller hoisted it). *)

val count : string -> int -> unit
(** [count name k]: no-op when disabled, else [add (find name) k]. *)

val value : t -> int
val name : t -> string

val all : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

val reset : unit -> unit
(** Drop the whole registry. *)

let nbuckets = 63

type t = {
  name : string;
  cells : int Atomic.t array;  (* length [nbuckets] *)
  total : int Atomic.t;
  n : int Atomic.t;
  max_seen : int Atomic.t;
}

let registry_mutex = Mutex.create ()

(* rv_lint: allow R3 -- every access goes through registry_mutex *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let find name =
  Mutex.lock registry_mutex;
  let h =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
        let h =
          {
            name;
            cells = Array.init nbuckets (fun _ -> Atomic.make 0);
            total = Atomic.make 0;
            n = Atomic.make 0;
            max_seen = Atomic.make 0;
          }
        in
        Hashtbl.add registry name h;
        h
  in
  Mutex.unlock registry_mutex;
  h

(* Bucket of v > 0 is 1 + floor(log2 v): the position of its highest set
   bit, capped so absurd values land in the last bucket. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      incr b;
      x := !x lsr 1
    done;
    min !b (nbuckets - 1)
  end

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let observe_t t v =
  ignore (Atomic.fetch_and_add t.cells.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add t.total v);
  ignore (Atomic.fetch_and_add t.n 1);
  atomic_max t.max_seen v

let observe name v = if Obs.enabled () then observe_t (find name) v

let name t = t.name
let count t = Atomic.get t.n
let sum t = Atomic.get t.total
let mean t = if count t = 0 then 0. else float_of_int (sum t) /. float_of_int (count t)
let max_value t = Atomic.get t.max_seen

let bucket_bounds i =
  if i <= 0 then (min_int, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let percentile t p =
  let p = Float.min 1. (Float.max 0. p) in
  let n = Atomic.get t.n in
  if n = 0 then 0
  else begin
    (* Smallest bucket whose cumulative count covers rank [ceil (p*n)];
       report its upper bound, clamped to the largest value actually
       seen (exact for the top bucket, 2x-coarse below it). *)
    let rank = max 1 (int_of_float (ceil (p *. float_of_int n))) in
    let rec go i acc =
      if i >= nbuckets then Atomic.get t.max_seen
      else begin
        let acc = acc + Atomic.get t.cells.(i) in
        if acc >= rank then
          if i = 0 then 0 else min (snd (bucket_bounds i)) (Atomic.get t.max_seen)
        else go (i + 1) acc
      end
    in
    go 0 0
  end

let buckets t =
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    let c = Atomic.get t.cells.(i) in
    if c > 0 then begin
      let lo, hi = bucket_bounds i in
      out := (lo, hi, c) :: !out
    end
  done;
  !out

let all () =
  Mutex.lock registry_mutex;
  let xs = Hashtbl.fold (fun _ h acc -> h :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun a b -> String.compare a.name b.name) xs

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.reset registry;
  Mutex.unlock registry_mutex

let spf = Printf.sprintf

let span_rows events =
  (* Aggregate by (cat, name), preserving first-seen order per key. *)
  let tbl : (string * string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun (e : Obs.event) ->
      match e.Obs.kind with
      | Obs.Instant -> ()
      | Obs.Span { dur_us; _ } ->
          let key = (e.Obs.cat, e.Obs.name) in
          let n, total, worst =
            match Hashtbl.find_opt tbl key with
            | Some cell -> cell
            | None ->
                let cell = (ref 0, ref 0., ref 0.) in
                Hashtbl.add tbl key cell;
                order := key :: !order;
                cell
          in
          incr n;
          total := !total +. dur_us;
          worst := Float.max !worst dur_us)
    events;
  List.rev_map
    (fun ((cat, name) as key) ->
      let n, total, worst = Hashtbl.find tbl key in
      (cat, name, !n, !total, !total /. float_of_int !n, !worst))
    !order

let lane_busy events =
  let tbl : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Obs.event) ->
      match e.Obs.kind with
      | Obs.Span { dur_us; _ } when e.Obs.cat = "engine" ->
          let cell =
            match Hashtbl.find_opt tbl e.Obs.tid with
            | Some c -> c
            | None ->
                let c = ref 0. in
                Hashtbl.add tbl e.Obs.tid c;
                c
          in
          cell := !cell +. dur_us
      | _ -> ())
    events;
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun tid busy acc -> (tid, !busy) :: acc) tbl [])

let summary ?gc () =
  let b = Buffer.create 1024 in
  let section title = Buffer.add_string b (spf "%s\n" title) in
  Buffer.add_string b
    "== observability summary ==========================================\n";
  let events = Obs.events () in
  let rows = span_rows events in
  if rows <> [] then begin
    section "spans (by category/name):";
    Buffer.add_string b
      (spf "  %-10s %-28s %8s %12s %10s %10s\n" "cat" "name" "count" "total ms"
         "mean us" "max us");
    List.iter
      (fun (cat, name, n, total, mean, worst) ->
        Buffer.add_string b
          (spf "  %-10s %-28s %8d %12.3f %10.1f %10.1f\n" cat name n (total /. 1000.)
             mean worst))
      rows
  end;
  (match lane_busy events with
  | [] | [ _ ] -> ()
  | lanes ->
      section "engine lanes (busy time):";
      List.iter
        (fun (tid, busy) ->
          Buffer.add_string b
            (spf "  %-20s %10.3f ms\n" (Obs.lane_name tid) (busy /. 1000.)))
        lanes);
  (match Counter.all () with
  | [] -> ()
  | counters ->
      section "counters:";
      List.iter
        (fun (name, v) -> Buffer.add_string b (spf "  %-40s %14d\n" name v))
        counters);
  (match Histogram.all () with
  | [] -> ()
  | hists ->
      section "histograms (log2 buckets):";
      List.iter
        (fun h ->
          Buffer.add_string b
            (spf "  %s: count=%d mean=%.1f max=%d\n" (Histogram.name h)
               (Histogram.count h) (Histogram.mean h) (Histogram.max_value h));
          List.iter
            (fun (lo, hi, c) ->
              let range =
                if lo = min_int then "<= 0" else spf "[%d, %d]" lo hi
              in
              Buffer.add_string b (spf "    %-24s %10d\n" range c))
            (Histogram.buckets h))
        hists);
  (match gc with
  | None -> ()
  | Some g ->
      section "gc (delta over the run):";
      Buffer.add_string b (Gc_snapshot.to_string g);
      Buffer.add_char b '\n');
  if Obs.dropped () > 0 then
    Buffer.add_string b
      (spf "note: %d events dropped (buffer cap); raise Obs.set_max_events\n"
         (Obs.dropped ()));
  if Obs.unbalanced_ends () > 0 then
    Buffer.add_string b
      (spf "note: %d unbalanced end_span calls\n" (Obs.unbalanced_ends ()));
  Buffer.contents b

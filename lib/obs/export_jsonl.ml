let event_json (e : Obs.event) =
  let base =
    [
      ("name", Json.Str e.Obs.name);
      ("cat", Json.Str e.Obs.cat);
      ("ts_us", Json.Float e.Obs.ts_us);
      ("pid", Json.Int Obs.pid);
      ("tid", Json.Int e.Obs.tid);
    ]
  in
  let round r key = if r >= 0 then [ (key, Json.Int r) ] else [] in
  let args = if e.Obs.args = [] then [] else [ ("args", Json.Obj e.Obs.args) ] in
  match e.Obs.kind with
  | Obs.Span { dur_us; round_end } ->
      Json.Obj
        ((("type", Json.Str "span") :: base)
        @ [ ("dur_us", Json.Float dur_us) ]
        @ round e.Obs.round "round" @ round round_end "round_end" @ args)
  | Obs.Instant ->
      Json.Obj
        ((("type", Json.Str "instant") :: base) @ round e.Obs.round "round" @ args)

let counter_json (name, value) =
  Json.Obj [ ("type", Json.Str "counter"); ("name", Json.Str name); ("value", Json.Int value) ]

let histogram_json h =
  Json.Obj
    [
      ("type", Json.Str "histogram");
      ("name", Json.Str (Histogram.name h));
      ("count", Json.Int (Histogram.count h));
      ("sum", Json.Int (Histogram.sum h));
      ("max", Json.Int (Histogram.max_value h));
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, hi, c) ->
               Json.List [ Json.Int (max lo 0); Json.Int hi; Json.Int c ])
             (Histogram.buckets h)) );
    ]

let lines () =
  List.map Json.to_string
    (List.map event_json (Obs.events ())
    @ List.map counter_json (Counter.all ())
    @ List.map histogram_json (Histogram.all ()))

let write oc = List.iter (fun l -> output_string oc (l ^ "\n")) (lines ())

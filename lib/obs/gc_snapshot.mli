(** Allocation and collection snapshots ([Gc.quick_stat]), and their
    difference over an instrumented region — the "how much did this sweep
    allocate / how often did the GC run" half of the metrics summary. *)

type t = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

val take : unit -> t

val diff : before:t -> after:t -> t
(** Word and collection counters subtract; [heap_words]/[top_heap_words]
    keep the [after] values (they are levels, not flows). *)

val to_json : t -> Json.t
val to_string : t -> string
(** Multi-line human rendering, one stat per line. *)

(** Prometheus text-exposition rendering (format version 0.0.4).

    The renderer takes a list of metric {e families} — name, HELP text,
    TYPE, and samples with label sets — and produces the classic
    [# HELP] / [# TYPE] / sample-line text format scraped by Prometheus
    and read by promtool.  Output is deterministic: families are sorted
    by name, samples within a family by their rendered (sorted-key)
    label string, so two scrapes of the same state are byte-identical
    and the format is golden-testable. *)

type typ = Counter_t | Gauge_t | Summary_t

type sample = { labels : (string * string) list; value : float }

type family = { fname : string; help : string; typ : typ; samples : sample list }

val render : family list -> string
(** Render families to exposition text.  Stable order; label values are
    escaped per the exposition rules (backslash, quote, newline). *)

val single : ?labels:(string * string) list -> string -> string -> typ -> float -> family
(** [single name help typ v] is a one-sample family — convenience for
    plain counters and gauges. *)

val value_string : float -> string
(** Prometheus sample-value rendering: integers without a decimal point,
    [+Inf]/[-Inf]/[NaN] spelled the Prometheus way. *)

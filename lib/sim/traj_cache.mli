(** Per-domain memoization of {!Traj.t} for adversarial sweeps.

    A sweep over label pairs × starts × delays needs each trajectory —
    a pure function of (algorithm, label, start) once the graph and
    explorer family are fixed — many times: for every partner label,
    every partner position, and every delay offset.  A {!ctx} captures
    the fixed part as a [build] function; {!get} memoizes its results
    per [(label, start)] key.

    The memo table is [Domain.DLS]-local: worker domains of an
    {!Rv_engine.Pool} share nothing (no locks, no cross-domain
    publication — lint rule R3 is satisfied by construction), each
    domain lazily rebuilding the trajectories its own tasks touch.  A
    fresh {!create} invalidates the tables of every domain on first
    access, so at most one sweep's trajectories are retained per domain.

    Memory is bounded per domain by [budget_rounds] (total materialized
    rounds, ~24 bytes each) with a two-generation second-chance scheme:
    entries accessed since the last rotation survive the next one, cold
    entries are dropped and rebuilt on demand — eviction never changes
    results, because builds are pure.

    When {!Rv_obs.Obs} is enabled, {!get} counts ["traj.cache_hits"] /
    ["traj.cache_misses"] and brackets each build in a ["traj.build"]
    span. *)

type ctx

val create :
  ?budget_rounds:int -> build:(label:int -> start:int -> Traj.t) -> unit -> ctx
(** A new cache generation around [build].  [build] must be pure and
    safe to call from any domain (it only reads immutable inputs).
    [budget_rounds] (default 2_000_000, ~50 MB per domain) caps the
    retained rounds per generation; clamped to at least 1. *)

val get : ctx -> label:int -> start:int -> Traj.t
(** Memoized [build ~label ~start] in the calling domain's table. *)

type stats = { hits : int; misses : int }
(** Process-wide lookup accounting across all generations and domains.
    Unlike the Obs counters, these are always on — [rv sweep --stats]
    reports hit ratios without enabling a trace. *)

val stats : unit -> stats
(** Counts since process start or the last {!reset_stats}. *)

val reset_stats : unit -> unit
(** Zero the process-wide counters (sweep entry points call this so
    [--stats] reports per-invocation ratios). *)

module Pg = Rv_graph.Port_graph
module Ex = Rv_explore.Explorer

type t = {
  start : int;
  rounds : int;
  first_move : int;
  pos : int array;
  port : int array;
  moves : int array;
}

let of_schedule ~g ~start ~rounds step =
  if rounds < 0 then invalid_arg "Traj.of_schedule: negative rounds";
  let pos = Array.make (rounds + 1) start in
  let port = Array.make (rounds + 1) (-1) in
  let moves = Array.make (rounds + 1) 0 in
  let entry = ref None in
  let first_move = ref (rounds + 1) in
  for r = 1 to rounds do
    let u = pos.(r - 1) in
    let obs = { Ex.degree = Pg.degree g u; entry = !entry } in
    match step obs with
    | Ex.Wait ->
        entry := None;
        pos.(r) <- u;
        port.(r) <- -1;
        moves.(r) <- moves.(r - 1)
    | Ex.Move p ->
        if p < 0 || p >= obs.Ex.degree then
          invalid_arg
            (Printf.sprintf
               "Traj.of_schedule: agent chose invalid port %d at node %d (degree %d)" p u
               obs.Ex.degree);
        let v, q = Pg.follow g u p in
        entry := Some q;
        if !first_move > rounds then first_move := r;
        pos.(r) <- v;
        port.(r) <- p;
        moves.(r) <- moves.(r - 1) + 1
  done;
  { start; rounds; first_move = !first_move; pos; port; moves }

type block = Still of int | Run of Ex.instance * int

let of_blocks ~g ~start blocks =
  let rounds =
    List.fold_left
      (fun acc b ->
        let k = match b with Still k -> k | Run (_, k) -> k in
        if k < 0 then invalid_arg "Traj.of_blocks: negative block length";
        acc + k)
      0 blocks
  in
  let pos = Array.make (rounds + 1) start in
  let port = Array.make (rounds + 1) (-1) in
  let moves = Array.make (rounds + 1) 0 in
  let entry = ref None in
  let first_move = ref (rounds + 1) in
  let r = ref 0 in
  List.iter
    (function
      | Still k ->
          (* The agent stays put: ports are already -1 from
             initialization, and position/cost only need writing when
             they differ from the initialized values — so the wait
             prefix of a schedule (the bulk of the label-scaled
             rendezvous algorithms) costs nothing at all. *)
          let u = pos.(!r) and m = moves.(!r) in
          if u <> start then Array.fill pos (!r + 1) k u;
          if m <> 0 then Array.fill moves (!r + 1) k m;
          if k > 0 then entry := None;
          r := !r + k
      | Run (step, k) ->
          for _ = 1 to k do
            incr r;
            let u = pos.(!r - 1) in
            let obs = { Ex.degree = Pg.degree g u; entry = !entry } in
            match step obs with
            | Ex.Wait ->
                entry := None;
                pos.(!r) <- u;
                moves.(!r) <- moves.(!r - 1)
            | Ex.Move p ->
                if p < 0 || p >= obs.Ex.degree then
                  invalid_arg
                    (Printf.sprintf
                       "Traj.of_blocks: agent chose invalid port %d at node %d (degree %d)"
                       p u obs.Ex.degree);
                let v, q = Pg.follow g u p in
                entry := Some q;
                if !first_move > rounds then first_move := !r;
                pos.(!r) <- v;
                port.(!r) <- p;
                moves.(!r) <- moves.(!r - 1) + 1
          done)
    blocks;
  { start; rounds; first_move = !first_move; pos; port; moves }

let clamp t r = if r < 0 then 0 else if r > t.rounds then t.rounds else r

let pos_at t r = t.pos.(clamp t r)

let cost_at t r = t.moves.(clamp t r)

type meeting = {
  met : bool;
  meeting_round : int option;
  meeting_node : int option;
  cost : int;
  cost_a : int;
  cost_b : int;
  rounds_run : int;
  crossings : int;
}

(* First round in [r1, r2] where [pos.(r - d)] equals [node]; 0 if none.
   The caller guarantees r - d is in bounds across the whole range.  This
   is the workhorse of the phased scan below: whenever one agent is
   pinned (asleep at its start, or finished at its final node), finding
   a meeting degenerates to scanning the other agent's position array
   for a constant. *)
let scan_const pos d r1 r2 node =
  let r = ref r1 and found = ref 0 in
  while !found = 0 && !r <= r2 do
    if Array.unsafe_get pos (!r - d) = node then found := !r else incr r
  done;
  !found

(* The shared segment scan behind {!meet} and {!meet_intervals}.  [from]
   is the round the detection window opens: meetings and crossings in
   rounds [<= from] are invisible.  The waiting model opens at 0 (both
   agents count from round 1); the parachute model opens at the later
   normalized delay — before that round the sleeping agent has not been
   placed, so co-location does not end the run (Sim.present).

   The scan walks segments of constant agent state instead of single
   rounds.  In absolute rounds, agent [x] is {e pinned} at its start
   through round [s_x] (asleep, plus any wait prefix of its schedule —
   for the rendezvous algorithms that prefix is the bulk of the walk),
   {e active} through round [e_x], and pinned at its final node
   afterwards.  Within a segment — a maximal interval crossing none of
   the four boundaries — a pinned pair can only meet at the segment's
   first detectable round (their nodes are fixed; in the waiting model
   that round was already compared by an earlier segment, in the
   parachute model it is the placement round of the later agent), a
   pinned/active pair reduces to scanning one position array for a
   constant ([scan_const]) with no crossing possible (the pinned agent
   takes no port), and only the active/active segments run the full
   meeting-plus-crossing loop.  Equivalence with the round-by-round
   reference simulator is property-tested in test/test_traj.ml for both
   models.

   Returns [(round, node, crossings)] with [node = -1] when no meeting
   was found (nodes are non-negative; the sentinel keeps the loop free
   of option allocations — this is the hottest loop in the tree, R8). *)
let meet_scan ~a ~b ~da ~db ~horizon ~from =
  let ra = a.rounds and rb = b.rounds in
  let pos_a = a.pos and pos_b = b.pos in
  let port_a = a.port and port_b = b.port in
  let crossings = ref 0 in
  let meet_node = ref (-1) in
  let r = ref (if from < horizon then from else horizon) in
  let sa = da + min (a.first_move - 1) ra and ea = da + ra in
  let sb = db + min (b.first_move - 1) rb and eb = db + rb in
  let fin_a = pos_a.(ra) and fin_b = pos_b.(rb) in
  while !r < horizon && !meet_node < 0 do
    let lo = !r in
    let hi = ref horizon in
    if sa > lo && sa < !hi then hi := sa;
    if ea > lo && ea < !hi then hi := ea;
    if sb > lo && sb < !hi then hi := sb;
    if eb > lo && eb < !hi then hi := eb;
    let hi = !hi in
    let a_pinned = lo >= ea || lo < sa and b_pinned = lo >= eb || lo < sb in
    if a_pinned && b_pinned then begin
      let na = if lo < sa then a.start else fin_a in
      let nb = if lo < sb then b.start else fin_b in
      if na = nb then begin
        (* With [from = 0] this is unreachable from distinct starts — a
           pinned pair on the same node was co-located one round earlier,
           which a previous segment already detected.  With a positive
           [from] it is the parachute placement meeting: the later agent
           lands on (or finishes next to) a finished partner. *)
        r := lo + 1;
        meet_node := na
      end
      else r := hi
    end
    else if a_pinned || b_pinned then begin
      let node =
        if a_pinned then if lo < sa then a.start else fin_a
        else if lo < sb then b.start
        else fin_b
      in
      let f =
        if a_pinned then scan_const pos_b db (lo + 1) hi node
        else scan_const pos_a da (lo + 1) hi node
      in
      if f > 0 then begin
        r := f;
        meet_node := node
      end
      else r := hi
    end
    else begin
      let prev_a = ref pos_a.(lo - da) and prev_b = ref pos_b.(lo - db) in
      while !r < hi && !meet_node < 0 do
        incr r;
        let la = !r - da and lb = !r - db in
        let pa = Array.unsafe_get pos_a la and pb = Array.unsafe_get pos_b lb in
        if
          pa = !prev_b && pb = !prev_a
          && Array.unsafe_get port_a la >= 0
          && Array.unsafe_get port_b lb >= 0
        then incr crossings;
        if pa = pb then meet_node := pa
        else begin
          prev_a := pa;
          prev_b := pb
        end
      done
    end
  done;
  (!r, !meet_node, !crossings)

let meet_with ~span ~from_of ~a ~b ~delay_a ~delay_b ~max_rounds =
  if a.start = b.start then invalid_arg "Traj.meet: agents must start at distinct nodes";
  if delay_a < 0 || delay_b < 0 then invalid_arg "Traj.meet: negative delay";
  (* Same normalization as Sim.run: the first [min delay] rounds are
     silent (both agents asleep at distinct nodes), so skip them in the
     scan and add them back to every reported round. *)
  let skip = max 0 (min (min delay_a delay_b) max_rounds) in
  let da = delay_a - skip and db = delay_b - skip in
  let horizon = max 0 (max_rounds - skip) in
  let scan () =
    let r, node, crossings =
      meet_scan ~a ~b ~da ~db ~horizon ~from:(from_of ~da ~db)
    in
    if Rv_obs.Obs.enabled () then Rv_obs.Histogram.observe "traj.scan_rounds" r;
    let cost_a = cost_at a (r - da) and cost_b = cost_at b (r - db) in
    if node >= 0 then
      {
        met = true;
        meeting_round = Some (r + skip);
        meeting_node = Some node;
        cost = cost_a + cost_b;
        cost_a;
        cost_b;
        rounds_run = r + skip;
        crossings;
      }
    else
      {
        met = false;
        meeting_round = None;
        meeting_node = None;
        cost = cost_a + cost_b;
        cost_a;
        cost_b;
        rounds_run = r + skip;
        crossings;
      }
  in
  if Rv_obs.Obs.enabled () then
    Rv_obs.Obs.span ~cat:"traj"
      ~args:
        [
          ("delay_a", Rv_obs.Json.Int delay_a);
          ("delay_b", Rv_obs.Json.Int delay_b);
          ("max_rounds", Rv_obs.Json.Int max_rounds);
        ]
      span scan
  else scan ()

let waiting_from ~da:_ ~db:_ = 0

(* Parachute: the later agent is placed at the end of round [max da db]
   (normalized), and Sim.run's first presence-gated comparison is after
   the moves of the following round — so the detection window opens at
   exactly that boundary. *)
let parachute_from ~da ~db = if da > db then da else db

let meet ~a ~b ~delay_a ~delay_b ~max_rounds =
  meet_with ~span:"traj.scan" ~from_of:waiting_from ~a ~b ~delay_a ~delay_b ~max_rounds

let meet_intervals ~a ~b ~delay_a ~delay_b ~max_rounds =
  meet_with ~span:"traj.scan_intervals" ~from_of:parachute_from ~a ~b ~delay_a ~delay_b
    ~max_rounds

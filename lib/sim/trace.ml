type round = {
  round : int;
  pos_a : int;
  pos_b : int;
  act_a : Rv_explore.Explorer.action;
  act_b : Rv_explore.Explorer.action;
  crossed : bool;
}

type t = round list

let positions_a t = List.map (fun r -> r.pos_a) t

let positions_b t = List.map (fun r -> r.pos_b) t

let crossings t = List.length (List.filter (fun r -> r.crossed) t)

let is_move = function Rv_explore.Explorer.Move _ -> true | Rv_explore.Explorer.Wait -> false

let moves_in t who =
  let pick r = match who with `A -> r.act_a | `B -> r.act_b in
  List.length (List.filter (fun r -> is_move (pick r)) t)

let pp_action fmt = function
  | Rv_explore.Explorer.Wait -> Format.fprintf fmt "wait"
  | Rv_explore.Explorer.Move p -> Format.fprintf fmt "port %d" p

let pp fmt t =
  List.iter
    (fun r ->
      Format.fprintf fmt "round %4d: A@%d (%a)  B@%d (%a)%s@." r.round r.pos_a pp_action
        r.act_a r.pos_b pp_action r.act_b
        (if r.crossed then "  [crossed]" else ""))
    t

module Ring = struct
  type buf = {
    cap : int;  (* <= 0: unbounded *)
    mutable data : round array;  (* physical storage; lazily sized *)
    mutable len : int;
    mutable next : int;  (* bounded mode: slot for the next write *)
    mutable dropped : int;
  }

  let create ~cap = { cap; data = [||]; len = 0; next = 0; dropped = 0 }

  let ensure b r =
    if Array.length b.data = 0 then
      b.data <- Array.make (if b.cap > 0 then b.cap else 64) r
    else if b.cap <= 0 && b.len = Array.length b.data then begin
      let grown = Array.make (2 * b.len) r in
      Array.blit b.data 0 grown 0 b.len;
      b.data <- grown
    end

  let add b r =
    ensure b r;
    if b.cap > 0 then begin
      b.data.(b.next) <- r;
      b.next <- (b.next + 1) mod b.cap;
      if b.len < b.cap then b.len <- b.len + 1 else b.dropped <- b.dropped + 1
    end
    else begin
      b.data.(b.len) <- r;
      b.len <- b.len + 1
    end

  let length b = b.len
  let dropped b = b.dropped

  let to_list b =
    if b.cap > 0 && b.len = b.cap then
      (* Full ring: oldest entry sits at [next]. *)
      List.init b.len (fun i -> b.data.((b.next + i) mod b.cap))
    else List.init b.len (fun i -> b.data.(i))
end

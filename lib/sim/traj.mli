(** Materialized agent trajectories and the vectorized meeting scan.

    In the waiting model an agent's walk is a pure function of
    (graph, schedule, start): the agent is present from round 1, its
    step function sees only degrees and entry ports, and neither the
    partner nor the wake-up delay can influence it.  A {!t} is that walk
    executed once and flattened into int arrays — per-round position,
    port taken, and cumulative move count — so that an adversarial sweep
    can replay it under every delay offset by scanning arrays with
    shifted indices instead of re-running the round-by-round simulator
    ({!Sim.run}) with its closure dispatch and observation allocation.

    {!meet} reproduces {!Sim.run}'s outcome exactly for the waiting
    model (same meeting round, node, costs, crossings and round cap
    semantics, including the delay normalization documented there); the
    equivalence is property-tested in [test/test_traj.ml] and asserted
    at bench time on full sweeps.

    The {e parachute} model is served by {!meet_intervals}: the walks
    themselves are model-independent ({!Sim}'s agents wait until their
    wake round in both models, so position and port arrays are
    identical), and parachute presence only gates {e detection} — both
    agents are present exactly from round [max delay_a delay_b + 1]
    onwards.  The parachute scan is therefore the waiting scan with the
    detection window opened at that boundary instead of at round 1
    (see DESIGN.md §3.6). *)

type t = private {
  start : int;  (** starting node; [pos.(0)] *)
  rounds : int;
      (** materialized rounds — the schedule's duration; the agent
          waits at [pos.(rounds)] forever afterwards *)
  first_move : int;
      (** first round with a port taken, [rounds + 1] if the agent never
          moves.  The scan in {!meet} uses it to skip the wait prefix —
          for the label-scaled rendezvous schedules that prefix is the
          bulk of the walk — in O(1). *)
  pos : int array;  (** length [rounds + 1]; [pos.(r)] = node after round [r] *)
  port : int array;
      (** length [rounds + 1]; [port.(r)] = port taken in round [r],
          [-1] for a wait; [port.(0) = -1] *)
  moves : int array;
      (** length [rounds + 1]; prefix sums — [moves.(r)] = edge
          traversals in rounds [1..r], so cost-at-round is O(1) *)
}

val of_schedule :
  g:Rv_graph.Port_graph.t ->
  start:int ->
  rounds:int ->
  Rv_explore.Explorer.instance ->
  t
(** [of_schedule ~g ~start ~rounds step] steps [step] (a fresh
    {!Rv_core.Schedule.to_instance}-style stepper, i.e. an undelayed
    agent program starting in round 1) for exactly [rounds] rounds from
    [start] and records the walk.  Raises [Invalid_argument] on an
    out-of-range port, like {!Sim.run}. *)

type block =
  | Still of int  (** the agent waits in place this many rounds ([>= 0]) *)
  | Run of Rv_explore.Explorer.instance * int
      (** step this instance for that many rounds *)

val of_blocks : g:Rv_graph.Port_graph.t -> start:int -> block list -> t
(** Block-structured constructor, equivalent to {!of_schedule} on the
    concatenated rounds but much cheaper when the schedule's shape is
    known: a [Still] block is materialized with [Array.fill] (no
    per-round dispatch — and the leading wait prefix of the label-scaled
    rendezvous schedules costs nothing at all, because the arrays are
    already initialized to the resting state).  [Run] blocks step their
    instance exactly like {!of_schedule}.  This is what the sweep fast
    path feeds {!Rv_core.Schedule.t} steps into. *)

val pos_at : t -> int -> int
(** [pos_at t r] is the node after [r] of the agent's own rounds,
    clamped into [0..t.rounds] (before round 1 the agent is at [start];
    after [t.rounds] it waits in place forever). *)

val cost_at : t -> int -> int
(** [cost_at t r] is the number of edge traversals in the agent's first
    [r] rounds, clamped like {!pos_at}. *)

type meeting = {
  met : bool;
  meeting_round : int option;
  meeting_node : int option;
  cost : int;
  cost_a : int;
  cost_b : int;
  rounds_run : int;
  crossings : int;
}
(** The delay-dependent outcome fields of {!Sim.outcome} (everything
    except the trace, which only the reference simulator records). *)

val meet : a:t -> b:t -> delay_a:int -> delay_b:int -> max_rounds:int -> meeting
(** [meet ~a ~b ~delay_a ~delay_b ~max_rounds] finds the first meeting
    of the two trajectories under the given wake-up delays in the
    waiting model, by scanning the position arrays with shifted indices:
    agent [a]'s position in absolute round [r] is [pos_at a (r - delay_a)].
    Same-node meetings and unnoticed edge crossings are detected from
    the positions at rounds [r - 1] and [r], exactly as {!Sim.run} does.

    Delays follow {!Sim.run}'s convention: arbitrary non-negative delays
    are accepted, the common [min delay] prefix is silent, and reported
    rounds include it.  Starting nodes must be distinct
    ([Invalid_argument] otherwise).

    When {!Rv_obs.Obs} is enabled, each call emits one ["traj.scan"]
    span and observes the scanned length in the ["traj.scan_rounds"]
    histogram. *)

val meet_intervals :
  a:t -> b:t -> delay_a:int -> delay_b:int -> max_rounds:int -> meeting
(** [meet_intervals] is {!meet} for the {e parachute} model: identical
    walks and delay normalization, but meetings and crossings are only
    detectable from round [max delay_a delay_b + 1] onwards — before
    that the later agent has not been placed ({!Sim.run}'s presence
    gate).  Reproduces {!Sim.run} [~model:Parachute] exactly on every
    outcome field; property-tested in [test/test_traj.ml].  Emits a
    ["traj.scan_intervals"] span when observation is enabled. *)

module Pg = Rv_graph.Port_graph
module Ex = Rv_explore.Explorer

type agent = { name : string; start : int; delay : int; step : Ex.instance }

type outcome = {
  gathered_round : int option;
  pairwise : (string * string * int) list;
  costs : (string * int) list;
  rounds_run : int;
}

type walker = {
  name : string;
  mutable pos : int;
  mutable entry : int option;
  mutable moves : int;
  wake : int;
  step_fn : Ex.instance;
}

let run ?(model = Sim.Waiting) ~g ~max_rounds ~stop agents =
  let k = List.length agents in
  if k < 2 then invalid_arg "Multi.run: need at least two agents";
  let starts = List.map (fun (a : agent) -> a.start) agents in
  if List.length (List.sort_uniq Int.compare starts) <> k then
    invalid_arg "Multi.run: starting nodes must be distinct";
  let names = List.map (fun (a : agent) -> a.name) agents in
  if List.length (List.sort_uniq String.compare names) <> k then
    invalid_arg "Multi.run: agent names must be distinct";
  if List.exists (fun (a : agent) -> a.delay < 0) agents then invalid_arg "Multi.run: negative delay";
  if List.fold_left (fun acc (a : agent) -> min acc a.delay) max_int agents <> 0 then
    invalid_arg "Multi.run: the earliest agent must have delay 0";
  let walkers =
    Array.of_list
      (List.map
         (fun (a : agent) ->
           { name = a.name; pos = a.start; entry = None; moves = 0; wake = a.delay + 1;
             step_fn = a.step })
         agents)
  in
  let met = Hashtbl.create 16 in
  let pair_count = k * (k - 1) / 2 in
  let gathered = ref None in
  let round = ref 0 in
  let present w r = match model with Sim.Waiting -> true | Sim.Parachute -> r >= w.wake in
  (try
     while !round < max_rounds do
       incr round;
       let r = !round in
       Array.iter
         (fun w ->
           if r >= w.wake then begin
             let obs = { Ex.degree = Pg.degree g w.pos; entry = w.entry } in
             match w.step_fn obs with
             | Ex.Wait -> w.entry <- None
             | Ex.Move p ->
                 if p < 0 || p >= obs.degree then
                   invalid_arg
                     (Printf.sprintf "Multi.run: agent %s chose invalid port %d" w.name p);
                 let v, q = Pg.follow g w.pos p in
                 w.pos <- v;
                 w.entry <- Some q;
                 w.moves <- w.moves + 1
           end)
         walkers;
       (* Record pairwise meetings. *)
       for i = 0 to k - 1 do
         for j = i + 1 to k - 1 do
           let wi = walkers.(i) and wj = walkers.(j) in
           if wi.pos = wj.pos && present wi r && present wj r
              && not (Hashtbl.mem met (i, j)) then
             Hashtbl.add met (i, j) r
         done
       done;
       let all_same =
         Array.for_all (fun w -> w.pos = walkers.(0).pos && present w r) walkers
       in
       if all_same && !gathered = None then gathered := Some r;
       (match stop with
       | `On_gather -> if !gathered <> None then raise Exit
       | `On_all_pairs -> if Hashtbl.length met = pair_count then raise Exit
       | `Never -> ())
     done
   with Exit -> ());
  let pairwise =
    Hashtbl.fold
      (fun (i, j) r acc -> (walkers.(i).name, walkers.(j).name, r) :: acc)
      met []
    |> List.sort Rv_util.Ord.(triple string string int)
  in
  {
    gathered_round = !gathered;
    pairwise;
    costs = Array.to_list (Array.map (fun w -> (w.name, w.moves)) walkers);
    rounds_run = !round;
  }

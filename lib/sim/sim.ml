module Pg = Rv_graph.Port_graph
module Ex = Rv_explore.Explorer

let src = Logs.Src.create "rv.sim" ~doc:"Rendezvous simulator events"

module Log = (val Logs.src_log src : Logs.LOG)

type model = Waiting | Parachute

type agent = { start : int; delay : int; step : Ex.instance }

type outcome = {
  met : bool;
  meeting_round : int option;
  meeting_node : int option;
  cost : int;
  cost_a : int;
  cost_b : int;
  rounds_run : int;
  crossings : int;
  trace : Trace.t option;
  trace_dropped : int;
}

type walker = {
  mutable pos : int;
  mutable entry : int option;
  mutable moves : int;
  wake : int;  (* first round in which the agent acts *)
  step_fn : Ex.instance;
}

let act_of walker g round =
  if round < walker.wake then Ex.Wait
  else begin
    let obs = { Ex.degree = Pg.degree g walker.pos; entry = walker.entry } in
    match walker.step_fn obs with
    | Ex.Wait -> Ex.Wait
    | Ex.Move p ->
        if p < 0 || p >= obs.degree then
          invalid_arg
            (Printf.sprintf "Sim.run: agent chose invalid port %d at node %d (degree %d)"
               p walker.pos obs.degree)
        else Ex.Move p
  end

let apply walker g action =
  match action with
  | Ex.Wait -> walker.entry <- None
  | Ex.Move p ->
      let v, q = Pg.follow g walker.pos p in
      walker.pos <- v;
      walker.entry <- Some q;
      walker.moves <- walker.moves + 1

let present model walker round =
  match model with Waiting -> true | Parachute -> round >= walker.wake

let default_trace_cap = 100_000

let run ?(model = Waiting) ?(record = false) ?(trace_cap = default_trace_cap) ~g
    ~max_rounds a b =
  if a.start = b.start then invalid_arg "Sim.run: agents must start at distinct nodes";
  if a.delay < 0 || b.delay < 0 then invalid_arg "Sim.run: negative delay";
  (* Normalize delays: during the first [min delay] rounds both agents
     are asleep at distinct nodes, so nothing can happen — skip those
     rounds in the loop and add them back to every reported round. *)
  let skip = max 0 (min (min a.delay b.delay) max_rounds) in
  let max_rounds = max_rounds - skip in
  let wa =
    { pos = a.start; entry = None; moves = 0; wake = a.delay - skip + 1; step_fn = a.step }
  in
  let wb =
    { pos = b.start; entry = None; moves = 0; wake = b.delay - skip + 1; step_fn = b.step }
  in
  let ring = if record then Some (Trace.Ring.create ~cap:trace_cap) else None in
  let crossings = ref 0 in
  let meeting_round = ref None and meeting_node = ref None in
  let round = ref 0 in
  (* Observability: everything here is per-run (one span, a handful of
     counter adds) except deep mode, which also publishes the round clock
     and gives each agent its own trace lane. *)
  let obs = Rv_obs.Obs.enabled () in
  let deep = obs && Rv_obs.Obs.deep () in
  let lane_a = if deep then Rv_obs.Obs.new_lane "agent A" else 0 in
  let lane_b = if deep then Rv_obs.Obs.new_lane "agent B" else 0 in
  if obs then
    Rv_obs.Obs.begin_span ~cat:"sim"
      ~args:
        [
          ("max_rounds", Rv_obs.Json.Int max_rounds);
          ("start_a", Rv_obs.Json.Int a.start);
          ("start_b", Rv_obs.Json.Int b.start);
        ]
      "sim.run";
  (try
     while !round < max_rounds do
       incr round;
       let r = !round in
       if deep then Rv_obs.Obs.set_round r;
       let act_a = (if deep then Rv_obs.Obs.set_lane lane_a; act_of wa g r) in
       let act_b = (if deep then Rv_obs.Obs.set_lane lane_b; act_of wb g r) in
       if deep then Rv_obs.Obs.clear_lane ();
       let before_a = wa.pos and before_b = wb.pos in
       apply wa g act_a;
       apply wb g act_b;
       let crossed =
         (match (act_a, act_b) with
         | Ex.Move _, Ex.Move _ -> wa.pos = before_b && wb.pos = before_a
         | Ex.Wait, _ | _, Ex.Wait -> false)
         && present model wa r && present model wb r
       in
       if crossed then incr crossings;
       (match ring with
       | None -> ()
       | Some ring ->
           Trace.Ring.add ring
             { Trace.round = r + skip; pos_a = wa.pos; pos_b = wb.pos; act_a; act_b; crossed });
       if wa.pos = wb.pos && present model wa r && present model wb r then begin
         meeting_round := Some (r + skip);
         meeting_node := Some wa.pos;
         Log.debug (fun m ->
             m "rendezvous at node %d in round %d (cost %d+%d)" wa.pos (r + skip) wa.moves
               wb.moves);
         if deep then
           Rv_obs.Obs.instant ~cat:"sim"
             ~args:[ ("node", Rv_obs.Json.Int wa.pos); ("cost", Rv_obs.Json.Int (wa.moves + wb.moves)) ]
             "meeting";
         raise Exit
       end
     done
   with Exit -> ());
  if obs then begin
    let met = !meeting_round <> None in
    Rv_obs.Counter.count "sim.runs" 1;
    Rv_obs.Counter.count "sim.rounds" !round;
    Rv_obs.Counter.count "sim.moves" (wa.moves + wb.moves);
    Rv_obs.Counter.count "sim.crossings" !crossings;
    if met then Rv_obs.Counter.count "sim.meetings" 1;
    let awake w = max 0 (!round - (w.wake - 1)) in
    Rv_obs.Counter.count "sim.waits" (awake wa - wa.moves + (awake wb - wb.moves));
    Rv_obs.Histogram.observe "sim.rounds_per_run" !round;
    Rv_obs.Histogram.observe "sim.cost_per_run" (wa.moves + wb.moves);
    if deep then Rv_obs.Obs.set_round (-1);
    Rv_obs.Obs.end_span ()
  end;
  {
    met = !meeting_round <> None;
    meeting_round = !meeting_round;
    meeting_node = !meeting_node;
    cost = wa.moves + wb.moves;
    cost_a = wa.moves;
    cost_b = wb.moves;
    rounds_run = !round + skip;
    crossings = !crossings;
    trace = (match ring with Some ring -> Some (Trace.Ring.to_list ring) | None -> None);
    trace_dropped = (match ring with Some ring -> Trace.Ring.dropped ring | None -> 0);
  }

let time outcome =
  match outcome.meeting_round with
  | Some r -> r
  | None -> invalid_arg "Sim.time: the agents did not meet"

let time_from_later_wake outcome ~later_delay =
  max 0 (time outcome - later_delay)

let solo ~g ~rounds ~start step =
  let w = { pos = start; entry = None; moves = 0; wake = 1; step_fn = step } in
  let actions = ref [] in
  for r = 1 to rounds do
    let act = act_of w g r in
    apply w g act;
    actions := act :: !actions
  done;
  (w.pos, List.rev !actions)

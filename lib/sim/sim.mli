(** The synchronous two-agent execution model (paper, Section 1.2).

    {b Round numbering convention.}  Rounds are numbered from 1.  An agent
    with delay [d] wakes in round [d + 1]; delays are normalized
    internally — the common [min delay] prefix, during which both agents
    are asleep at distinct nodes and nothing can happen, is skipped by the
    simulation loop but {e included} in every reported round
    ([meeting_round], [rounds_run], trace rounds) and in the [max_rounds]
    horizon.  Callers may therefore pass arbitrary non-negative delays;
    when [min delay = 0] (the paper's convention) round 1 is exactly the
    earlier agent's wake-up round.  Per round, each
    awake agent either waits or moves through a port of its current node;
    both moves happen simultaneously.  Rendezvous is both agents being at
    the same node in the same round — agents crossing the same edge in
    opposite directions do not notice each other.

    Two placement models (paper, Conclusion):
    - {!Waiting} (the paper's main model): both agents sit at their starting
      nodes from round 1; a sleeping agent can be found by the other one.
    - {!Parachute}: an agent is absent until its wake-up round; no meeting
      can involve an absent agent.

    {b Time} is the meeting round (rounds counted from the earlier agent's
    start).  {b Cost} is the total number of edge traversals by both agents
    until the meeting. *)

type model = Waiting | Parachute

type agent = {
  start : int;  (** starting node *)
  delay : int;  (** wake-up delay: the agent wakes in round [delay + 1] *)
  step : Rv_explore.Explorer.instance;
      (** called once per round from the wake-up round on; stateful *)
}

type outcome = {
  met : bool;
  meeting_round : int option;  (** = time, when met *)
  meeting_node : int option;
  cost : int;  (** total traversals until meeting (or until the round cap) *)
  cost_a : int;
  cost_b : int;
  rounds_run : int;  (** rounds actually simulated *)
  crossings : int;  (** unnoticed edge crossings before meeting *)
  trace : Trace.t option;
  trace_dropped : int;
      (** rounds evicted from the bounded trace ring; [0] unless recording
          overflowed [trace_cap] *)
}

val run :
  ?model:model ->
  ?record:bool ->
  ?trace_cap:int ->
  g:Rv_graph.Port_graph.t ->
  max_rounds:int ->
  agent ->
  agent ->
  outcome
(** [run ~g ~max_rounds a b] simulates until meeting or [max_rounds].
    Delays may be any non-negative integers (see the round numbering
    convention above — the common prefix is normalized away and added
    back to reported rounds); the starting nodes must be distinct and
    delays non-negative, [Invalid_argument] otherwise.
    [record] (default false) attaches a {!Trace.t}; the trace
    is collected in a ring buffer keeping the most recent [trace_cap]
    rounds (default 100_000; [<= 0] means unbounded), so recording a long
    adversarial run does not hold every round alive — evictions are
    reported in [trace_dropped].

    When {!Rv_obs.Obs} is enabled, each run emits one ["sim.run"] span
    and per-run counters (rounds, moves, crossings, waits, meetings); in
    deep mode it additionally publishes the round clock and gives each
    agent its own trace lane.

    The default model is {!Waiting}. *)

val time : outcome -> int
(** Meeting round; raises [Invalid_argument] if the agents did not meet. *)

val time_from_later_wake : outcome -> later_delay:int -> int
(** The alternative accounting of the paper's Conclusion (used by [26, 45]):
    rounds counted from the wake-up of the later agent, clamped at 0 when
    the meeting precedes it (possible in the waiting model, where the
    earlier agent can find a sleeping one).  Raises [Invalid_argument] if
    the agents did not meet. *)

val solo :
  g:Rv_graph.Port_graph.t ->
  rounds:int ->
  start:int ->
  Rv_explore.Explorer.instance ->
  int * Rv_explore.Explorer.action list
(** [solo ~g ~rounds ~start step] executes a single agent for exactly
    [rounds] rounds and returns its final position and the actions taken,
    in round order.  This is the paper's solo execution
    [alpha(x, p, _|_, _|_)], used to extract behaviour vectors. *)

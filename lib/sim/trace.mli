(** Per-round execution records.  Traces are optional (the simulator can run
    without recording) and feed the lower-bound machinery, the examples'
    narratives, and debugging. *)

type round = {
  round : int;  (** 1-based absolute round number *)
  pos_a : int;  (** position of agent A at the end of the round *)
  pos_b : int;
  act_a : Rv_explore.Explorer.action;  (** action taken during the round *)
  act_b : Rv_explore.Explorer.action;
  crossed : bool;
      (** the agents swapped endpoints of one edge this round (they do not
          notice this, per the model) *)
}

type t = round list
(** In round order. *)

val positions_a : t -> int list
val positions_b : t -> int list

val crossings : t -> int
(** Number of rounds in which the agents crossed on an edge. *)

val moves_in : t -> [ `A | `B ] -> int
(** Edge traversals performed by one agent over the trace. *)

val pp : Format.formatter -> t -> unit

(** Bounded collection for long adversarial runs: a ring buffer keeping
    the most recent [cap] rounds, so recording a trace never holds every
    round of a multi-million-round execution alive.  [cap <= 0] means
    unbounded (a growable array).  The simulator fills one of these when
    recording and converts it back to the plain {!t} list at the end, so
    the [pp]/accessor API above is unchanged. *)
module Ring : sig
  type buf

  val create : cap:int -> buf
  val add : buf -> round -> unit
  val length : buf -> int

  val dropped : buf -> int
  (** Rounds overwritten because the ring was full. *)

  val to_list : buf -> t
  (** Chronological (oldest kept round first). *)
end

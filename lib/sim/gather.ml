module Pg = Rv_graph.Port_graph
module Ex = Rv_explore.Explorer

type agent = { name : string; label : int; start : int; step : Ex.instance }

type merge_event = { round : int; members : string list }

type outcome = {
  gathered_round : int option;
  merges : merge_event list;
  total_cost : int;
  rounds_run : int;
}

type group = {
  mutable leader : agent;
  mutable names : string list;
  mutable size : int;
  mutable pos : int;
  mutable entry : int option;
}

let run ~g ~max_rounds agents =
  let k = List.length agents in
  if k < 2 then invalid_arg "Gather.run: need at least two agents";
  let distinct cmp f = List.length (List.sort_uniq cmp (List.map f agents)) = k in
  if not (distinct String.compare (fun a -> a.name)) then
    invalid_arg "Gather.run: duplicate names";
  if not (distinct Int.compare (fun a -> a.label)) then
    invalid_arg "Gather.run: duplicate labels";
  if not (distinct Int.compare (fun a -> a.start)) then
    invalid_arg "Gather.run: duplicate starts";
  let groups =
    ref
      (List.map
         (fun a -> { leader = a; names = [ a.name ]; size = 1; pos = a.start; entry = None })
         agents)
  in
  let merges = ref [] and total_cost = ref 0 in
  let gathered = ref None and round = ref 0 in
  (try
     while !round < max_rounds do
       incr round;
       let r = !round in
       (* Each group's leader decides; the whole group moves. *)
       List.iter
         (fun grp ->
           let obs = { Ex.degree = Pg.degree g grp.pos; entry = grp.entry } in
           match grp.leader.step obs with
           | Ex.Wait -> grp.entry <- None
           | Ex.Move p ->
               if p < 0 || p >= obs.Ex.degree then
                 invalid_arg
                   (Printf.sprintf "Gather.run: leader %s chose invalid port %d"
                      grp.leader.name p);
               let v, q = Pg.follow g grp.pos p in
               grp.pos <- v;
               grp.entry <- Some q;
               total_cost := !total_cost + grp.size)
         !groups;
       (* Merge co-located groups; the smallest label leads the union. *)
       let by_pos = Hashtbl.create 8 in
       List.iter
         (fun grp ->
           let cur = try Hashtbl.find by_pos grp.pos with Not_found -> [] in
           Hashtbl.replace by_pos grp.pos (grp :: cur))
         !groups;
       let next = ref [] in
       (* Visit positions in ascending order: Hashtbl.iter would impose
          bucket order on [groups] (and on same-round merge events),
          making the reported merge sequence depend on hashing. *)
       let positions =
         List.sort Int.compare (Hashtbl.fold (fun pos _ acc -> pos :: acc) by_pos [])
       in
       List.iter
         (fun pos ->
           match Hashtbl.find by_pos pos with
           | [ only ] -> next := only :: !next
           | [] -> ()
           | several ->
               let leader_group =
                 List.fold_left
                   (fun best grp ->
                     if grp.leader.label < best.leader.label then grp else best)
                   (List.hd several) (List.tl several)
               in
               let names =
                 List.sort String.compare
                   (List.concat_map (fun grp -> grp.names) several)
               in
               let size = List.fold_left (fun acc grp -> acc + grp.size) 0 several in
               leader_group.names <- names;
               leader_group.size <- size;
               merges := { round = r; members = names } :: !merges;
               next := leader_group :: !next)
         positions;
       groups := !next;
       match !groups with
       | [ lone ] when lone.size = k ->
           gathered := Some r;
           raise Exit
       | _ -> ()
     done
   with Exit -> ());
  {
    gathered_round = !gathered;
    merges = List.rev !merges;
    total_cost = !total_cost;
    rounds_run = !round;
  }

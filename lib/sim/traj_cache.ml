(* Keys are (label, start) pairs; the generation id scopes them to one
   sweep.  The table uses an explicit typed hash (R4: no polymorphic
   hashing of structured keys), and lives in Domain.DLS so each engine
   worker owns its table outright.

   Memory is bounded per domain: trajectories of long schedules (Cheap
   at large L runs to O(L*E) rounds) would otherwise accumulate to
   gigabytes across a sweep's label/start cross product.  A
   second-chance scheme keeps two generations — when the current
   table's retained rounds exceed the budget it becomes the previous
   generation (dropping the one before it), and entries still being
   touched are promoted back on access — so hot walks survive rotation
   while cold ones are reclaimed by the GC.  Eviction is invisible to
   results: builds are pure, so a rebuild returns the same arrays. *)
module Tbl = Hashtbl.Make (struct
  type t = int * int

  let equal (l1, s1) (l2, s2) = l1 = l2 && s1 = s2

  let hash (l, s) = (l * 0x9E3779B1) lxor s
end)

let default_budget_rounds = 2_000_000

(* Process-wide accounting, always on (unlike the Obs counters below,
   which only tick when observation is enabled): `rv sweep --stats`
   reports hit ratios without paying for a trace.  One fetch_and_add
   per lookup — negligible next to even a memoized scan. *)
type stats = { hits : int; misses : int }

let hit_count = Atomic.make 0

let miss_count = Atomic.make 0

let stats () = { hits = Atomic.get hit_count; misses = Atomic.get miss_count }

let reset_stats () =
  Atomic.set hit_count 0;
  Atomic.set miss_count 0

type ctx = { id : int; budget : int; build : label:int -> start:int -> Traj.t }

let next_id = Atomic.make 0

type slot = {
  mutable owner : int;
  mutable cur : Traj.t Tbl.t;
  mutable prev : Traj.t Tbl.t;
  mutable cur_rounds : int;
}

let slot_key =
  Domain.DLS.new_key (fun () ->
      { owner = -1; cur = Tbl.create 64; prev = Tbl.create 0; cur_rounds = 0 })

let create ?(budget_rounds = default_budget_rounds) ~build () =
  { id = Atomic.fetch_and_add next_id 1; budget = max 1 budget_rounds; build }

let add_current ctx slot key t =
  Tbl.add slot.cur key t;
  slot.cur_rounds <- slot.cur_rounds + t.Traj.rounds + 1;
  if slot.cur_rounds > ctx.budget then begin
    slot.prev <- slot.cur;
    slot.cur <- Tbl.create 64;
    slot.cur_rounds <- 0
  end

let get ctx ~label ~start =
  let slot = Domain.DLS.get slot_key in
  if slot.owner <> ctx.id then begin
    slot.cur <- Tbl.create 64;
    slot.prev <- Tbl.create 0;
    slot.cur_rounds <- 0;
    slot.owner <- ctx.id
  end;
  let key = (label, start) in
  match Tbl.find_opt slot.cur key with
  | Some t ->
      ignore (Atomic.fetch_and_add hit_count 1);
      if Rv_obs.Obs.enabled () then Rv_obs.Counter.count "traj.cache_hits" 1;
      t
  | None -> (
      match Tbl.find_opt slot.prev key with
      | Some t ->
          (* Second chance: still hot, promote into the current
             generation so the next rotation keeps it. *)
          Tbl.remove slot.prev key;
          add_current ctx slot key t;
          ignore (Atomic.fetch_and_add hit_count 1);
          if Rv_obs.Obs.enabled () then Rv_obs.Counter.count "traj.cache_hits" 1;
          t
      | None ->
          ignore (Atomic.fetch_and_add miss_count 1);
          if Rv_obs.Obs.enabled () then Rv_obs.Counter.count "traj.cache_misses" 1;
          let t =
            Rv_obs.Obs.span ~cat:"traj"
              ~args:[ ("label", Rv_obs.Json.Int label); ("start", Rv_obs.Json.Int start) ]
              "traj.build"
              (fun () -> ctx.build ~label ~start)
          in
          add_current ctx slot key t;
          t)

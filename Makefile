# Convenience entry points; every target is a thin wrapper over dune.

.PHONY: all build test lint tsan bench clean

all: build

build:
	dune build

test:
	dune runtest

# Determinism/domain-safety static analysis over lib/ bin/ bench/.
# Fails on any unsuppressed finding; see README "Static analysis".
lint:
	dune build @lint

# 2-domain sweep under ThreadSanitizer.  Skips (exit 0) on switches
# without TSan support (needs OCaml >= 5.2 + ocaml-option-tsan).
tsan:
	dune build @tsan

bench:
	dune exec bench/main.exe

clean:
	dune clean

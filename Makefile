# Convenience entry points; every target is a thin wrapper over dune.

.PHONY: all build test lint baseline tsan bench chaos fuzz clean

all: build

build:
	dune build

test:
	dune runtest

# Determinism + concurrency static analysis (both passes, R1..R9) over
# lib/ bin/ bench/ test/ examples/, diffed against lint_baseline.json.
# Fails on any new unsuppressed finding; see README "Static analysis".
lint:
	dune build @lint

# Regenerate the accepted-debt baseline after reviewing new findings.
baseline:
	dune build @all bin/rv_lint.exe
	dune exec bin/rv_lint.exe -- --write-baseline lint_baseline.json

# 2-domain sweep under ThreadSanitizer (runs the lint gate first).
# Skips the sweep (exit 0) on switches without TSan support (needs
# OCaml >= 5.2 + ocaml-option-tsan).
tsan:
	dune build @tsan

bench:
	dune exec bench/main.exe

# Full fault-injection pass: the scenario catalog against a self-spawned
# server, then a 60s soak writing BENCH_chaos.json (same as the CI
# chaos-smoke job's core; scripts/chaos_smoke.sh is the long version).
chaos:
	dune build bin/rv.exe
	dune exec bin/rv.exe -- chaos
	dune exec bin/rv.exe -- chaos --soak 60

# Quick differential fuzz sweep (Traj vs Sim, serve vs direct, sym
# on/off); a mismatch shrinks to a fixture under test/fixtures/.
fuzz:
	dune build bin/rv.exe
	dune exec bin/rv.exe -- fuzz --cells 500

clean:
	dune clean

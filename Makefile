# Convenience entry points; every target is a thin wrapper over dune.

.PHONY: all build test lint baseline tsan bench clean

all: build

build:
	dune build

test:
	dune runtest

# Determinism + concurrency static analysis (both passes, R1..R9) over
# lib/ bin/ bench/ test/ examples/, diffed against lint_baseline.json.
# Fails on any new unsuppressed finding; see README "Static analysis".
lint:
	dune build @lint

# Regenerate the accepted-debt baseline after reviewing new findings.
baseline:
	dune build @all bin/rv_lint.exe
	dune exec bin/rv_lint.exe -- --write-baseline lint_baseline.json

# 2-domain sweep under ThreadSanitizer (runs the lint gate first).
# Skips the sweep (exit 0) on switches without TSan support (needs
# OCaml >= 5.2 + ocaml-option-tsan).
tsan:
	dune build @tsan

bench:
	dune exec bench/main.exe

clean:
	dune clean

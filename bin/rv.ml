(* rv — command-line front end.

   Subcommands:
     run      simulate one rendezvous and print the outcome (optionally a trace)
     trace    deep observability dive into one rendezvous (spans, Chrome trace)
     sweep    worst-case time/cost over starts, delays and label pairs
     explore  verify an exploration procedure and report measured bounds
     lb       run the Section-3 lower-bound pipelines and print their reports
     exp      print experiment tables from the DESIGN.md index
     async    adversarial-scheduler analysis (asynchronous model)
     gather   k-agent gathering with merge-on-meet semantics
     dot      emit a Graphviz rendering of a graph spec
     bake     precompute a worst-case index over a parameter lattice
     serve    TCP query server (index, admission control, result cache, drain)
     loadgen  deterministic load harness for a running serve instance
     chaos    fault-injection scenario catalog / soak mode against rv serve
     fuzz     differential fuzzing (Traj vs Sim, serve vs direct, sym on/off)
     obs      tail/watch/dump a running serve's anomaly flight recorder
     version  build identity and feature flags *)

open Cmdliner
module R = Rv_core.Rendezvous
module Spec = Rv_experiments.Spec
module Table = Rv_util.Table

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("rv: " ^ msg);
      exit 1

(* Shared argument definitions. *)

let graph_arg =
  let doc =
    "Graph specification. Accepted forms: " ^ String.concat ", " Spec.graph_forms ^ "."
  in
  Arg.(value & opt string "ring:16" & info [ "g"; "graph" ] ~docv:"SPEC" ~doc)

let explorer_arg =
  let doc =
    "Exploration procedure. Accepted forms: "
    ^ String.concat ", " Spec.explorer_forms
    ^ "."
  in
  Arg.(value & opt string "auto" & info [ "e"; "explorer" ] ~docv:"SPEC" ~doc)

let algo_arg =
  let doc =
    "Rendezvous algorithm. Accepted forms: "
    ^ String.concat ", " Spec.algorithm_forms
    ^ "."
  in
  Arg.(value & opt string "fast" & info [ "a"; "algo" ] ~docv:"ALGO" ~doc)

let space_arg =
  Arg.(value & opt int 16 & info [ "L"; "space" ] ~docv:"L" ~doc:"Label space size.")

let parse_common ~graph ~explorer ~algo =
  let g = or_die (Spec.parse_graph graph) in
  let ex = or_die (Spec.parse_explorer g explorer) in
  let a = or_die (Spec.parse_algorithm algo) in
  (g, ex, a)

(* Multicore: -j/--jobs (or RV_JOBS) selects the engine's domain count;
   0 means "auto" = Domain.recommended_domain_count.  Results are
   bit-for-bit identical for every value (Rv_engine.Sweep merges in task
   order), so parallelism is purely a wall-clock knob. *)

let jobs_arg =
  let doc =
    "Worker domains for adversarial sweeps (0 = auto: the hardware's \
     recommended domain count).  Results are identical for every value."
  in
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N" ~env:(Cmd.Env.info "RV_JOBS") ~doc)

let with_pool jobs f =
  let jobs = if jobs > 0 then jobs else Domain.recommended_domain_count () in
  if jobs <= 1 then f None
  else begin
    let pool = Rv_engine.Pool.create ~jobs () in
    Fun.protect
      ~finally:(fun () -> Rv_engine.Pool.shutdown pool)
      (fun () -> f (Some pool))
  end

(* --metrics: enable the rv_obs collectors around [f] and append the
   console summary (spans, counters, histograms, GC delta) to stderr. *)

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Collect rv_obs instrumentation (span timings, counters, \
           histograms, GC delta) during the run and print the summary to \
           stderr.")

let with_metrics metrics f =
  if not metrics then f ()
  else begin
    Rv_obs.Obs.set_enabled true;
    Rv_obs.Obs.reset ();
    Rv_obs.Counter.reset ();
    Rv_obs.Histogram.reset ();
    let before = Rv_obs.Gc_snapshot.take () in
    let r = f () in
    let after = Rv_obs.Gc_snapshot.take () in
    Printf.eprintf "%s%!"
      (Rv_obs.Export_console.summary ~gc:(Rv_obs.Gc_snapshot.diff ~before ~after) ());
    r
  end

(* run *)

let run_cmd =
  let run graph explorer algo space la lb sa sb da db trace parachute =
    let gs, ex, algorithm = parse_common ~graph ~explorer ~algo in
    let model = if parachute then Rv_sim.Sim.Parachute else Rv_sim.Sim.Waiting in
    let out =
      R.run ~model ~record:trace ~g:gs.Spec.g ~explorer:ex ~algorithm ~space
        { R.label = la; start = sa; delay = da }
        { R.label = lb; start = sb; delay = db }
    in
    let e = Rv_experiments.Workload.e_of ex in
    Printf.printf "graph       : %s (n=%d, E=%d)\n" gs.Spec.spec
      (Rv_graph.Port_graph.n gs.Spec.g) e;
    Printf.printf "algorithm   : %s, label space L=%d\n" (R.name algorithm) space;
    Printf.printf "agents      : A(label %d, start %d, delay %d)  B(label %d, start %d, delay %d)\n"
      la sa da lb sb db;
    (match out.Rv_sim.Sim.meeting_round with
    | Some r ->
        Printf.printf "rendezvous  : node %d in round %d (time %d = %.2f E)\n"
          (Option.get out.Rv_sim.Sim.meeting_node)
          r r
          (float_of_int r /. float_of_int e)
    | None -> Printf.printf "rendezvous  : NOT REACHED within %d rounds\n" out.Rv_sim.Sim.rounds_run);
    Printf.printf "cost        : %d traversals (A %d + B %d = %.2f E)\n" out.Rv_sim.Sim.cost
      out.Rv_sim.Sim.cost_a out.Rv_sim.Sim.cost_b
      (float_of_int out.Rv_sim.Sim.cost /. float_of_int e);
    Printf.printf "crossings   : %d (unnoticed, per the model)\n" out.Rv_sim.Sim.crossings;
    Printf.printf "proven      : time <= %d, cost <= %d\n"
      (R.proven_time_bound algorithm ~e ~space)
      (R.proven_cost_bound algorithm ~e ~space);
    match out.Rv_sim.Sim.trace with
    | Some t when trace -> Format.printf "%a" Rv_sim.Trace.pp t
    | Some _ | None -> ()
  in
  let la = Arg.(value & opt int 3 & info [ "la" ] ~doc:"Label of agent A.") in
  let lb = Arg.(value & opt int 11 & info [ "lb" ] ~doc:"Label of agent B.") in
  let sa = Arg.(value & opt int 0 & info [ "start-a" ] ~doc:"Start node of A.") in
  let sb = Arg.(value & opt int (-1) & info [ "start-b" ] ~doc:"Start node of B (default: antipode).") in
  let da = Arg.(value & opt int 0 & info [ "delay-a" ] ~doc:"Wake-up delay of A.") in
  let db = Arg.(value & opt int 0 & info [ "delay-b" ] ~doc:"Wake-up delay of B.") in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the full round-by-round trace.") in
  let parachute =
    Arg.(value & flag & info [ "parachute" ] ~doc:"Use the parachute placement model.")
  in
  let wrap graph explorer algo space la lb sa sb da db trace parachute =
    let gs = or_die (Spec.parse_graph graph) in
    let n = Rv_graph.Port_graph.n gs.Spec.g in
    let sb = if sb < 0 then (sa + (n / 2)) mod n else sb in
    run graph explorer algo space la lb sa sb da db trace parachute
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one rendezvous execution")
    Term.(
      const wrap $ graph_arg $ explorer_arg $ algo_arg $ space_arg $ la $ lb $ sa $ sb $ da
      $ db $ trace $ parachute)

(* trace *)

let trace_cmd =
  let trace graph explorer algo space la lb sa sb da db parachute trace_max_rounds
      chrome jsonl =
    let gs, ex, algorithm = parse_common ~graph ~explorer ~algo in
    let model = if parachute then Rv_sim.Sim.Parachute else Rv_sim.Sim.Waiting in
    Rv_obs.Obs.set_enabled true;
    Rv_obs.Obs.set_deep true;
    Rv_obs.Obs.reset ();
    Rv_obs.Counter.reset ();
    Rv_obs.Histogram.reset ();
    let before = Rv_obs.Gc_snapshot.take () in
    (* Route the single run through the engine so the trace carries all
       three layers (engine -> sim -> explore) even without a pool. *)
    let out =
      (Rv_engine.Sweep.map_array 1 (fun _ ->
           R.run ~model ~record:true ~trace_cap:trace_max_rounds ~g:gs.Spec.g
             ~explorer:ex ~algorithm ~space
             { R.label = la; start = sa; delay = da }
             { R.label = lb; start = sb; delay = db })).(0)
    in
    let after = Rv_obs.Gc_snapshot.take () in
    let e = Rv_experiments.Workload.e_of ex in
    Printf.printf "graph       : %s (n=%d, E=%d)\n" gs.Spec.spec
      (Rv_graph.Port_graph.n gs.Spec.g) e;
    Printf.printf "algorithm   : %s, label space L=%d\n" (R.name algorithm) space;
    Printf.printf
      "agents      : A(label %d, start %d, delay %d)  B(label %d, start %d, delay %d)\n"
      la sa da lb sb db;
    (match out.Rv_sim.Sim.meeting_round with
    | Some r ->
        Printf.printf "rendezvous  : node %d in round %d (time %d = %.2f E)\n"
          (Option.get out.Rv_sim.Sim.meeting_node)
          r r
          (float_of_int r /. float_of_int e)
    | None ->
        Printf.printf "rendezvous  : NOT REACHED within %d rounds\n"
          out.Rv_sim.Sim.rounds_run);
    Printf.printf "cost        : %d traversals (A %d + B %d)\n" out.Rv_sim.Sim.cost
      out.Rv_sim.Sim.cost_a out.Rv_sim.Sim.cost_b;
    let events = Rv_obs.Obs.events () in
    Printf.printf "\nspan timeline (%d events):\n" (List.length events);
    Printf.printf "  %10s %10s  %-12s %s\n" "ts ms" "dur ms" "lane" "cat:name [rounds]";
    List.iter
      (fun (ev : Rv_obs.Obs.event) ->
        match ev.Rv_obs.Obs.kind with
        | Rv_obs.Obs.Span { dur_us; round_end } ->
            let rounds =
              if ev.Rv_obs.Obs.round < 0 then ""
              else if round_end < 0 || round_end = ev.Rv_obs.Obs.round then
                Printf.sprintf " [round %d]" ev.Rv_obs.Obs.round
              else Printf.sprintf " [rounds %d..%d]" ev.Rv_obs.Obs.round round_end
            in
            Printf.printf "  %10.3f %10.3f  %-12s %s:%s%s\n"
              (ev.Rv_obs.Obs.ts_us /. 1000.) (dur_us /. 1000.)
              (Rv_obs.Obs.lane_name ev.Rv_obs.Obs.tid)
              ev.Rv_obs.Obs.cat ev.Rv_obs.Obs.name rounds
        | Rv_obs.Obs.Instant ->
            let round =
              if ev.Rv_obs.Obs.round < 0 then ""
              else Printf.sprintf " [round %d]" ev.Rv_obs.Obs.round
            in
            Printf.printf "  %10.3f %10s  %-12s %s:%s (instant)%s\n"
              (ev.Rv_obs.Obs.ts_us /. 1000.) "-"
              (Rv_obs.Obs.lane_name ev.Rv_obs.Obs.tid)
              ev.Rv_obs.Obs.cat ev.Rv_obs.Obs.name round)
      events;
    print_newline ();
    (match out.Rv_sim.Sim.trace with
    | Some t -> Format.printf "%a" Rv_sim.Trace.pp t
    | None -> ());
    if out.Rv_sim.Sim.trace_dropped > 0 then
      Printf.printf
        "(%d earliest rounds evicted from the trace ring; raise --trace-max-rounds)\n"
        out.Rv_sim.Sim.trace_dropped;
    print_newline ();
    print_string
      (Rv_obs.Export_console.summary ~gc:(Rv_obs.Gc_snapshot.diff ~before ~after) ());
    (match chrome with
    | Some path ->
        Rv_obs.Export_chrome.write_file path;
        Printf.printf "chrome trace: wrote %s (open at https://ui.perfetto.dev)\n" path
    | None -> ());
    match jsonl with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Rv_obs.Export_jsonl.write oc);
        Printf.printf "jsonl events: wrote %s\n" path
    | None -> ()
  in
  let la = Arg.(value & opt int 3 & info [ "la" ] ~doc:"Label of agent A.") in
  let lb = Arg.(value & opt int 11 & info [ "lb" ] ~doc:"Label of agent B.") in
  let sa = Arg.(value & opt int 0 & info [ "start-a" ] ~doc:"Start node of A.") in
  let sb =
    Arg.(
      value & opt int (-1)
      & info [ "start-b" ] ~doc:"Start node of B (default: antipode).")
  in
  let da = Arg.(value & opt int 0 & info [ "delay-a" ] ~doc:"Wake-up delay of A.") in
  let db = Arg.(value & opt int 0 & info [ "delay-b" ] ~doc:"Wake-up delay of B.") in
  let parachute =
    Arg.(value & flag & info [ "parachute" ] ~doc:"Use the parachute placement model.")
  in
  let trace_max_rounds =
    Arg.(
      value & opt int 10_000
      & info [ "trace-max-rounds" ] ~docv:"N"
          ~doc:
            "Keep only the most recent $(docv) rounds in the printed \
             round-by-round trace (0 or negative: unbounded).")
  in
  let chrome =
    Arg.(
      value & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON to $(docv); load it at \
             https://ui.perfetto.dev or chrome://tracing.  Lanes: one per \
             domain plus one per agent.")
  in
  let jsonl =
    Arg.(
      value & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:"Write the span/counter/histogram stream as JSON lines to $(docv).")
  in
  let wrap graph explorer algo space la lb sa sb da db parachute tmr chrome jsonl =
    let gs = or_die (Spec.parse_graph graph) in
    let n = Rv_graph.Port_graph.n gs.Spec.g in
    let sb = if sb < 0 then (sa + (n / 2)) mod n else sb in
    trace graph explorer algo space la lb sa sb da db parachute tmr chrome jsonl
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Deep observability dive into one rendezvous (spans, Chrome trace)")
    Term.(
      const wrap $ graph_arg $ explorer_arg $ algo_arg $ space_arg $ la $ lb $ sa $ sb
      $ da $ db $ parachute $ trace_max_rounds $ chrome $ jsonl)

(* sweep *)

let sweep_stats_report () =
  let s = Rv_experiments.Workload.Stats.snapshot () in
  let c = Rv_sim.Traj_cache.stats () in
  let module WS = Rv_experiments.Workload.Stats in
  let lookups = c.Rv_sim.Traj_cache.hits + c.Rv_sim.Traj_cache.misses in
  let ratio = if lookups = 0 then 0. else float_of_int c.Rv_sim.Traj_cache.hits /. float_of_int lookups in
  Printf.sprintf
    "symmetry %s (x%d coverage), %d configs covered / %d simulated \
     (reference %d, traj %d, interval %d); traj cache %d/%d hits (%.0f%%)"
    s.WS.sym_group s.WS.orbit_size s.WS.covered s.WS.simulated
    s.WS.reference_cells s.WS.traj_cells s.WS.interval_cells
    c.Rv_sim.Traj_cache.hits lookups (100. *. ratio)

let sweep_cmd =
  let sweep graph explorer algo space max_pairs max_delay all_pairs jobs jsonl csv stats
      metrics =
    let gs, ex, algorithm = parse_common ~graph ~explorer ~algo in
    let e = Rv_experiments.Workload.e_of ex in
    let delays =
      if R.delay_tolerant algorithm then
        List.sort_uniq
          Rv_util.Ord.(pair int int)
          [ (0, 0); (0, 1); (0, max_delay); (1, 0); (max_delay, 0) ]
      else [ (0, 0) ]
    in
    let pairs = Rv_experiments.Workload.sample_pairs ~space ~max_pairs in
    let sinks =
      (match jsonl with
      | Some path -> [ Rv_engine.Sink.file `Jsonl path ]
      | None -> [])
      @ (match csv with Some path -> [ Rv_engine.Sink.file `Csv path ] | None -> [])
    in
    let sink =
      match sinks with [] -> None | [ s ] -> Some s | ss -> Some (Rv_engine.Sink.tee ss)
    in
    let progress = Rv_engine.Progress.create ~total:(List.length pairs) () in
    if stats then begin
      Rv_experiments.Workload.Stats.reset ();
      Rv_sim.Traj_cache.reset_stats ()
    end;
    let positions = if all_pairs then `All_pairs else `Fixed_first in
    let outcome =
      with_metrics metrics (fun () ->
          with_pool jobs (fun pool ->
              Rv_experiments.Workload.worst_for ?pool ?sink ~progress
                ~graph_spec:gs.Spec.spec ~g:gs.Spec.g ~algorithm ~space ~explorer:ex
                ~pairs ~positions ~delays ()))
    in
    Option.iter Rv_engine.Sink.close sink;
    if stats then begin
      Printf.eprintf "rv: sweep: %s\n%!" (Rv_engine.Progress.report progress);
      Printf.eprintf "rv: sweep: %s\n%!" (sweep_stats_report ())
    end;
    match outcome with
    | Error msg ->
        prerr_endline ("rv: rendezvous failure during sweep: " ^ msg);
        exit 1
    | Ok (t, c) ->
        Table.print
          (Table.make
             ~title:(Printf.sprintf "worst case over %d label pairs" (List.length pairs))
             ~headers:[ "metric"; "measured"; "proven bound"; "ratio" ]
             [
               [
                 "time";
                 string_of_int t;
                 string_of_int (R.proven_time_bound algorithm ~e ~space);
                 Table.cell_ratio (float_of_int t)
                   (float_of_int (R.proven_time_bound algorithm ~e ~space));
               ];
               [
                 "cost";
                 string_of_int c;
                 string_of_int (R.proven_cost_bound algorithm ~e ~space);
                 Table.cell_ratio (float_of_int c)
                   (float_of_int (R.proven_cost_bound algorithm ~e ~space));
               ];
             ])
  in
  let max_pairs =
    Arg.(value & opt int 8 & info [ "pairs" ] ~doc:"Maximum number of label pairs to sweep.")
  in
  let max_delay = Arg.(value & opt int 8 & info [ "max-delay" ] ~doc:"Largest wake-up delay.") in
  let all_pairs =
    Arg.(
      value & flag
      & info [ "all-pairs" ]
          ~doc:
            "Sweep every ordered starting-position pair instead of pinning \
             agent A to node 0.  On vertex-transitive graphs the sweep \
             evaluates only one representative per symmetry orbit and \
             replays the rest (disable with RV_NO_SYM=1; the output is \
             byte-identical either way).")
  in
  let jsonl =
    Arg.(
      value & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:
            "Stream one JSON record per simulated configuration to $(docv) \
             (schema: see Rv_engine.Record).  The stream is byte-identical \
             for every --jobs value.")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Like --jsonl, but as a CSV table with header.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print sweep counters to stderr: tasks and worst-so-far, plus the \
             symmetry coverage multiplier, per-kernel cell counts (reference \
             / trajectory / interval) and the trajectory-cache hit ratio.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Worst-case time/cost over starts, delays and labels")
    Term.(
      const sweep $ graph_arg $ explorer_arg $ algo_arg $ space_arg $ max_pairs $ max_delay
      $ all_pairs $ jobs_arg $ jsonl $ csv $ stats $ metrics_arg)

(* explore *)

let explore_cmd =
  let explore graph explorer =
    let gs = or_die (Spec.parse_graph graph) in
    let ex = or_die (Spec.parse_explorer gs explorer) in
    let g = gs.Spec.g in
    let declared = Rv_experiments.Workload.e_of ex in
    (match Rv_explore.Bounds.verify g ~make:ex with
    | Ok () -> ()
    | Error msg ->
        prerr_endline ("rv: exploration contract violated: " ^ msg);
        exit 1);
    (match Rv_explore.Bounds.verify_repeated g ~make:ex ~executions:3 with
    | Ok () -> ()
    | Error msg ->
        prerr_endline ("rv: repeated-execution contract violated: " ^ msg);
        exit 1);
    let worst = or_die (Rv_explore.Bounds.worst g ~make:ex) in
    Printf.printf "graph          : %s (n=%d, e=%d edges)\n" gs.Spec.spec
      (Rv_graph.Port_graph.n g) (Rv_graph.Port_graph.num_edges g);
    Printf.printf "explorer       : %s\n" (ex ~start:0).Rv_explore.Explorer.name;
    Printf.printf "declared E     : %d rounds\n" declared;
    Printf.printf "measured worst : %d rounds to cover all nodes (tightest valid E)\n" worst;
    Printf.printf "contract       : verified from every start, including repeated executions\n"
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Verify an exploration procedure and measure its exact bound")
    Term.(const explore $ graph_arg $ explorer_arg)

(* lb *)

let lb_cmd =
  let lb n space which algo =
    let vectors =
      match algo with
      | "" -> None
      | spec ->
          let a = or_die (Spec.parse_algorithm spec) in
          Some (Rv_lowerbound.Theorem_cheap.vectors_of ~n ~space a)
    in
    match which with
    | "cheap" -> (
        let vectors =
          match vectors with
          | Some v -> v
          | None -> Rv_lowerbound.Theorem_cheap.cheap_sim_vectors ~n ~space
        in
        match Rv_lowerbound.Theorem_cheap.analyze ~n ~vectors with
        | Error msg ->
            prerr_endline ("rv: " ^ msg);
            exit 1
        | Ok r ->
            Printf.printf
              "Theorem 3.1 pipeline on cheap-sim (n=%d, L=%d):\n\
              \  phi (cost slack)      : %d\n\
              \  Fact 3.5 violations   : %d\n\
              \  chain length          : %d\n\
              \  strictly increasing   : %b\n\
              \  slope (rounds/step)   : %.1f (predicted >= %.1f)\n\
              \  last |alpha|          : %d rounds (Omega(EL) expected)\n"
              n space r.Rv_lowerbound.Theorem_cheap.phi r.fact_3_5_violations
              (List.length r.chain) r.chain_monotone r.slope r.predicted_slope
              r.last_duration;
            List.iter
              (fun (s : Rv_lowerbound.Tournament.chain_step) ->
                Printf.printf "    alpha_%d: labels (%d,%d) meet at round %d\n" s.index
                  s.first s.second s.duration)
              r.chain)
    | "fast" -> (
        let vectors =
          match vectors with
          | Some v -> v
          | None -> Rv_lowerbound.Theorem_cheap.fast_sim_vectors ~n ~space
        in
        match Rv_lowerbound.Theorem_fast.analyze ~n ~vectors with
        | Error msg ->
            prerr_endline ("rv: " ^ msg);
            exit 1
        | Ok r ->
            Printf.printf
              "Theorem 3.2 pipeline on fast-sim (n=%d, L=%d):\n\
              \  largest pigeonhole group : block %d (%d agents)\n\
              \  progress vectors distinct: %b\n\
              \  max non-zero entries     : %d\n\
              \  implied cost (k*E/6)     : %d\n" n space
              r.Rv_lowerbound.Theorem_fast.group_block (List.length r.group)
              r.distinct_progress r.max_nonzero r.min_implied_cost_of_max;
            List.iter
              (fun (a : Rv_lowerbound.Theorem_fast.agent_report) ->
                Printf.printf
                  "    label %3d: m_x=%5d block=%3d nonzero=%3d implied>=%4d solo cost=%5d\n"
                  a.label a.m_x a.block a.nonzero a.implied_cost a.solo_cost)
              r.agents)
    | other ->
        prerr_endline ("rv: unknown pipeline " ^ other ^ " (use cheap | fast)");
        exit 1
  in
  let n = Arg.(value & opt int 24 & info [ "n" ] ~doc:"Ring size (6 | n for fast).") in
  let which =
    Arg.(value & pos 0 string "cheap" & info [] ~docv:"PIPELINE" ~doc:"cheap | fast")
  in
  let algo =
    Arg.(value & opt string ""
         & info [ "a"; "algo" ]
             ~doc:"Run the pipeline on this algorithm's behaviour vectors instead of the default subject (e.g. fwr-sim:2).")
  in
  Cmd.v
    (Cmd.info "lb" ~doc:"Run the Section-3 lower-bound pipelines")
    Term.(const lb $ n $ space_arg $ which $ algo)

(* exp *)

let exp_cmd =
  let exp ids all markdown stats jobs metrics =
    let emit t =
      if markdown then print_string (Table.render_markdown t ^ "\n") else Table.print t
    in
    if stats then begin
      Rv_experiments.Workload.Stats.reset ();
      Rv_sim.Traj_cache.reset_stats ()
    end;
    (with_metrics metrics @@ fun () ->
     with_pool jobs (fun pool ->
         if all then List.iter (fun (_, t) -> emit t) (Rv_experiments.Report.all ?pool ())
         else if ids = [] then begin
           Printf.printf "available experiments: %s\n"
             (String.concat ", " Rv_experiments.Report.ids);
           Printf.printf "use 'rv exp A B ...' or 'rv exp --all'\n"
         end
         else
           List.iter
             (fun id ->
               match Rv_experiments.Report.by_id id with
               | Some f -> emit (f ?pool ())
               | None ->
                   prerr_endline ("rv: unknown experiment " ^ id);
                   exit 1)
             ids));
    if stats then Printf.eprintf "rv: exp: %s\n%!" (sweep_stats_report ())
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (A..M, G2).") in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Print every experiment table.") in
  let markdown =
    Arg.(value & flag & info [ "md"; "markdown" ] ~doc:"Emit GitHub-flavoured markdown.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print sweep kernel counters to stderr after the tables: per-path \
             cell counts (reference / trajectory / interval), the symmetry \
             coverage multiplier and the trajectory-cache hit ratio, summed \
             over every sweep the selected experiments ran.")
  in
  Cmd.v (Cmd.info "exp" ~doc:"Print experiment tables from the DESIGN.md index")
    Term.(const exp $ ids $ all $ markdown $ stats $ jobs_arg $ metrics_arg)

(* selftest *)

let selftest_cmd =
  let selftest () =
    (* Verify the EXPLORE contract for every (family, explorer) pairing the
       Spec layer supports, then check the proven rendezvous bounds on a
       quick Fast sweep per family. *)
    let cases =
      [
        ("ring:12", "ring");
        ("ring:12", "dfs");
        ("scrambled-ring:10", "dfs");
        ("grid:3x4", "dfs");
        ("grid:3x4", "dfs-nr");
        ("grid:3x3", "unmarked");
        ("torus:3x4", "euler");
        ("torus:3x4", "ham");
        ("hypercube:3", "ham");
        ("complete:7", "ham");
        ("tree:10", "dfs");
        ("binary:2", "dfs-nr");
        ("petersen", "dfs");
        ("lollipop:4:3", "dfs");
        ("random:10:4", "dfs");
        ("wheel:7", "dfs");
      ]
    in
    let failures = ref 0 in
    List.iter
      (fun (gspec, espec) ->
        match Spec.parse_graph gspec with
        | Error e ->
            incr failures;
            Printf.printf "FAIL %-20s %-10s parse: %s\n" gspec espec e
        | Ok gs -> (
            match Spec.parse_explorer gs espec with
            | Error e ->
                incr failures;
                Printf.printf "FAIL %-20s %-10s explorer: %s\n" gspec espec e
            | Ok ex -> (
                match
                  ( Rv_explore.Bounds.verify gs.Spec.g ~make:ex,
                    Rv_explore.Bounds.verify_repeated gs.Spec.g ~make:ex ~executions:2 )
                with
                | Ok (), Ok () -> (
                    let e = Rv_experiments.Workload.e_of ex in
                    match
                      Rv_experiments.Workload.worst_for ~g:gs.Spec.g
                        ~algorithm:R.Fast ~space:8 ~explorer:ex ~pairs:[ (3, 5) ]
                        ~positions:
                          (`Pairs [ (0, Rv_graph.Port_graph.n gs.Spec.g - 1) ])
                        ~delays:[ (0, 0); (0, 1) ] ()
                    with
                    | Ok (t, c) ->
                        let tb = R.proven_time_bound R.Fast ~e ~space:8 in
                        let cb = R.proven_cost_bound R.Fast ~e ~space:8 in
                        if t <= tb && c <= cb then
                          Printf.printf "ok   %-20s %-10s E=%-5d time %d/%d cost %d/%d\n"
                            gspec espec e t tb c cb
                        else begin
                          incr failures;
                          Printf.printf "FAIL %-20s %-10s bound exceeded\n" gspec espec
                        end
                    | Error msg ->
                        incr failures;
                        Printf.printf "FAIL %-20s %-10s rendezvous: %s\n" gspec espec msg)
                | Error msg, _ | _, Error msg ->
                    incr failures;
                    Printf.printf "FAIL %-20s %-10s contract: %s\n" gspec espec msg)))
      cases;
    if !failures = 0 then print_endline "selftest: all checks passed"
    else begin
      Printf.printf "selftest: %d failures\n" !failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "selftest"
       ~doc:"Verify exploration contracts and rendezvous bounds across all builtin families")
    Term.(const selftest $ const ())

(* async *)

let async_cmd =
  let async n la lb gap algo =
    let gs = or_die (Spec.parse_graph (Printf.sprintf "ring:%d" n)) in
    let g = gs.Spec.g in
    let explorer = Rv_explore.Ring_walk.clockwise ~n in
    let show = function
      | Rv_async.Async_model.Forced k -> Printf.sprintf "FORCED (after %d events)" k
      | Rv_async.Async_model.Evadable { final_a; final_b } ->
          Printf.sprintf "EVADABLE (adversary parks the agents at %d and %d)" final_a final_b
    in
    let report =
      match algo with
      | "async-ring" -> Rv_async.Async_ring.analyze ~n ~label_a:la ~start_a:0 ~label_b:lb ~start_b:gap
      | name ->
          let a = or_die (Spec.parse_algorithm name) in
          let route label start =
            Rv_async.Async_model.route_of_schedule g ~start
              (R.schedule a ~space:(max la lb) ~label ~explorer:explorer)
          in
          Rv_async.Async_model.analyze g ~route_a:(route la 0) ~route_b:(route lb gap)
    in
    Printf.printf "oriented ring n=%d, labels %d vs %d, gap %d, algorithm %s\n" n la lb gap algo;
    Printf.printf "  node meeting : %s\n" (show report.Rv_async.Async_model.node_meeting);
    Printf.printf "  edge meeting : %s\n" (show report.Rv_async.Async_model.edge_meeting);
    Printf.printf "  route lengths: %d and %d edges\n"
      (List.length report.Rv_async.Async_model.route_a - 1)
      (List.length report.Rv_async.Async_model.route_b - 1)
  in
  let n = Arg.(value & opt int 8 & info [ "n" ] ~doc:"Ring size.") in
  let la = Arg.(value & opt int 2 & info [ "la" ] ~doc:"Label of agent A.") in
  let lb = Arg.(value & opt int 5 & info [ "lb" ] ~doc:"Label of agent B.") in
  let gap = Arg.(value & opt int 3 & info [ "gap" ] ~doc:"Clockwise distance from A to B.") in
  let algo =
    Arg.(value & opt string "cheap"
         & info [ "a"; "algo" ] ~doc:"cheap | fast | fwr:W | async-ring")
  in
  Cmd.v
    (Cmd.info "async" ~doc:"Adversarial-scheduler analysis (asynchronous model)")
    Term.(const async $ n $ la $ lb $ gap $ algo)

(* gather *)

let gather_cmd =
  let gather graph explorer count =
    let gs = or_die (Spec.parse_graph graph) in
    let ex = or_die (Spec.parse_explorer gs explorer) in
    let g = gs.Spec.g in
    let n = Rv_graph.Port_graph.n g in
    if count < 2 || count > n then begin
      prerr_endline "rv: agent count must be between 2 and n";
      exit 1
    end;
    let agents =
      List.init count (fun i ->
          let label = i + 1 in
          let start = i * n / count in
          {
            Rv_sim.Gather.name = Printf.sprintf "agent%d" label;
            label;
            start;
            step =
              Rv_core.Schedule.to_instance
                (Rv_core.Cheap.schedule_simultaneous ~label ~explorer:(ex ~start));
          })
    in
    let e = Rv_experiments.Workload.e_of ex in
    let out = Rv_sim.Gather.run ~g ~max_rounds:(4 * count * e) agents in
    List.iter
      (fun (m : Rv_sim.Gather.merge_event) ->
        Printf.printf "round %4d: merged {%s}\n" m.Rv_sim.Gather.round
          (String.concat ", " m.Rv_sim.Gather.members))
      out.Rv_sim.Gather.merges;
    match out.Rv_sim.Gather.gathered_round with
    | Some r ->
        Printf.printf "gathered %d agents in round %d (E = %d) at total cost %d\n" count r e
          out.Rv_sim.Gather.total_cost
    | None -> Printf.printf "no gathering within %d rounds\n" out.Rv_sim.Gather.rounds_run
  in
  let count = Arg.(value & opt int 4 & info [ "k"; "agents" ] ~doc:"Number of agents.") in
  Cmd.v
    (Cmd.info "gather" ~doc:"Gather k agents with merge-on-meet cheap-sim schedules")
    Term.(const gather $ graph_arg $ explorer_arg $ count)

(* lint *)

let lint_cmd =
  let lint paths json rules catalog scope no_typed build_dir hotpaths baseline
      write_baseline sarif =
    if catalog then begin
      print_string (Rv_lint.Cli.catalog ());
      exit 0
    end;
    exit
      (Rv_lint.Cli.run ~scope ~typed:(not no_typed) ~build_dir ~hotpaths
         ~baseline ~write_baseline ~sarif ~json ~rules ~paths ())
  in
  let paths =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to lint (default: the roots selected by \
             $(b,--scope)).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the machine-readable JSON report on stdout.")
  in
  let rules =
    Arg.(
      value
      & opt ~vopt:(Some "list") (some string) None
      & info [ "rules" ] ~docv:"R1,R2,..."
          ~doc:
            "Comma-separated subset of rules to run (default: all of R1..R9). \
             With no value, list the full catalog and exit.")
  in
  let catalog =
    Arg.(
      value & flag
      & info [ "catalog" ] ~doc:"Print the rule catalog with rationale and exit.")
  in
  let scope =
    Arg.(
      value & opt string "full"
      & info [ "scope" ] ~docv:"full|core"
          ~doc:
            "Default path set when no PATH is given: $(b,full) = lib bin \
             bench test examples; $(b,core) = lib bin bench (the pre-v2 \
             walk).")
  in
  let no_typed =
    Arg.(
      value & flag
      & info [ "no-typed" ]
          ~doc:"Skip the typed pass (R6..R9); run only the source pass.")
  in
  let build_dir =
    Arg.(
      value & opt (some string) None
      & info [ "build-dir" ] ~docv:"DIR"
          ~doc:
            "Directory holding dune's .cmt artifacts for the typed pass \
             (default: _build/default).")
  in
  let hotpaths =
    Arg.(
      value & opt (some string) None
      & info [ "hotpaths" ] ~docv:"FILE"
          ~doc:
            "Hot-path manifest for R8/dispatcher-R7 (default: \
             lint_hotpaths.txt when present).")
  in
  let baseline =
    Arg.(
      value & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Diff mode: fail only on findings not in this checked-in \
             baseline.")
  in
  let write_baseline =
    Arg.(
      value & opt (some string) None
      & info [ "write-baseline" ] ~docv:"FILE"
          ~doc:"Write the current findings as a fresh baseline and exit 0.")
  in
  let sarif =
    Arg.(
      value & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:
            "Additionally write the full (pre-baseline) report as SARIF \
             2.1.0 to FILE.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static determinism & concurrency checks (same engine as rv_lint)")
    Term.(
      const lint $ paths $ json $ rules $ catalog $ scope $ no_typed $ build_dir
      $ hotpaths $ baseline $ write_baseline $ sarif)

(* dot *)

let dot_cmd =
  let dot graph =
    let gs = or_die (Spec.parse_graph graph) in
    print_string (Rv_graph.Dot.to_dot gs.Spec.g)
  in
  Cmd.v (Cmd.info "dot" ~doc:"Emit Graphviz for a graph spec") Term.(const dot $ graph_arg)

(* bake *)

let bake_cmd =
  let bake out graphs algorithms explorers spaces pairs max_delays run_labels
      generation jobs =
    let lattice =
      or_die
        (Rv_index.Lattice.of_args ~graphs ~algorithms ~explorers ~spaces ~pairs
           ~max_delays ~run_labels ())
    in
    let cells = Rv_index.Lattice.cells lattice in
    with_pool jobs @@ fun pool ->
    let entries =
      List.map
        (fun q ->
          let key = Rv_index.Key.render q in
          match Rv_serve.Handler.eval_vals ?pool ~deadline_us:None q with
          | Ok v -> (key, Rv_serve.Handler.values_of_vals v)
          | Error (_, msg, _) ->
              prerr_endline (Printf.sprintf "rv bake: %s: %s" key msg);
              exit 1)
        cells
    in
    match
      Rv_index.Writer.write ~path:out ~generation
        ~meta:(Rv_index.Lattice.describe lattice)
        entries
    with
    | Error msg ->
        prerr_endline ("rv bake: " ^ msg);
        exit 1
    | Ok n ->
        Printf.printf
          "rv bake: wrote %s (%d records, generation %d, format v%d)\n" out n
          generation Rv_index.Format.version
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Index file to write.")
  in
  let graphs =
    Arg.(
      value
      & opt string "ring:16"
      & info [ "graphs" ] ~docv:"SPEC,..."
          ~doc:"Comma-separated graph specs to bake.")
  in
  let algorithms =
    Arg.(
      value & opt string "fast"
      & info [ "algorithms" ] ~docv:"ALGO,..."
          ~doc:"Comma-separated rendezvous algorithms.")
  in
  let explorers =
    Arg.(
      value & opt string "auto"
      & info [ "explorers" ] ~docv:"SPEC,..."
          ~doc:"Comma-separated exploration procedures.")
  in
  let spaces =
    Arg.(
      value & opt string "16"
      & info [ "spaces" ] ~docv:"L,..." ~doc:"Comma-separated label-space sizes.")
  in
  let pairs =
    Arg.(
      value & opt string "8"
      & info [ "pairs" ] ~docv:"N,..." ~doc:"Comma-separated label-pair budgets.")
  in
  let max_delays =
    Arg.(
      value & opt string "8"
      & info [ "max-delays" ] ~docv:"D,..."
          ~doc:"Comma-separated largest wake-up delays.")
  in
  let run_labels =
    Arg.(
      value & opt string ""
      & info [ "run-labels" ] ~docv:"A:B,..."
          ~doc:
            "Also bake run cells for these label pairs (start 0 vs antipode, \
             zero delays, waiting model — the wire protocol's defaults).")
  in
  let generation =
    Arg.(
      value & opt int 1
      & info [ "generation" ] ~docv:"N"
          ~doc:"Generation number stamped into the index header.")
  in
  Cmd.v
    (Cmd.info "bake"
       ~doc:
         "Precompute a worst-case index over a parameter lattice and write \
          it as a versioned binary file for rv serve --index")
    Term.(
      const bake $ out $ graphs $ algorithms $ explorers $ spaces $ pairs
      $ max_delays $ run_labels $ generation $ jobs_arg)

(* serve *)

let port_arg =
  Arg.(
    value & opt int 7421
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on (0 = ephemeral).")

let serve_cmd =
  let serve port jobs cache_mb queue_cap deadline_ms index index_backfill
      no_telemetry slow_us metrics =
    with_metrics metrics @@ fun () ->
    let jobs = if jobs > 0 then jobs else Domain.recommended_domain_count () in
    let server =
      Rv_serve.Server.start
        {
          Rv_serve.Server.default_config with
          port;
          jobs;
          cache_bytes = cache_mb * 1024 * 1024;
          queue_cap;
          default_deadline_ms = (if deadline_ms > 0 then Some deadline_ms else None);
          index_path = index;
          index_backfill;
          telemetry = not no_telemetry;
          slow_us;
        }
    in
    Rv_serve.Server.install_signals server;
    Printf.printf "rv serve: listening on 127.0.0.1:%d (jobs %d, cache %d MiB, queue %d%s%s)\n%!"
      (Rv_serve.Server.port server) jobs cache_mb queue_cap
      (if deadline_ms > 0 then Printf.sprintf ", deadline %dms" deadline_ms else "")
      (match index with
      | Some path ->
          Printf.sprintf ", index %s%s" path
            (if index_backfill then "+backfill" else "")
      | None -> "");
    (* Blocks until SIGINT/SIGTERM triggers the drain; SIGHUP reloads
       the index in place. *)
    Rv_serve.Server.join server;
    Printf.printf "rv serve: drained\n%!"
  in
  let cache_mb =
    Arg.(
      value & opt int 8
      & info [ "cache-mb" ] ~docv:"MB" ~doc:"Result cache budget in MiB (0 disables).")
  in
  let queue_cap =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission queue bound; a full queue answers overloaded immediately.")
  in
  let deadline_ms =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-request deadline (0 = none; requests may set their own).")
  in
  let index =
    Arg.(
      value
      & opt (some string) None
      & info [ "index" ] ~docv:"FILE"
          ~doc:
            "Consult this baked rv_index file before the result cache.  A \
             missing or corrupt file is a warning, not a failure; SIGHUP \
             reloads it live.")
  in
  let index_backfill =
    Arg.(
      value & flag
      & info [ "index-backfill" ]
          ~doc:
            "Accumulate computed index misses and periodically republish \
             --index as the next generation (requires --index).")
  in
  let no_telemetry =
    Arg.(
      value & flag
      & info [ "no-telemetry" ]
          ~doc:
            "Disable the always-on serving telemetry (sliding latency \
             windows, flight recorder, gauge sampler).  Reply bytes are \
             identical either way; this exists for overhead measurement.")
  in
  let slow_us =
    Arg.(
      value & opt int 10_000
      & info [ "slow-us" ] ~docv:"US"
          ~doc:
            "Flag requests slower than this as slow in the flight recorder \
             (only when the request carries no deadline; with one, the \
             threshold is half the budget).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve rendezvous queries over TCP (newline-delimited JSON) with \
          admission control, a precomputed index, a result cache and \
          graceful drain")
    Term.(
      const serve $ port_arg $ jobs_arg $ cache_mb $ queue_cap $ deadline_ms
      $ index $ index_backfill $ no_telemetry $ slow_us $ metrics_arg)

(* loadgen *)

let loadgen_cmd =
  let loadgen port conns requests seed mix churn dump json =
    let mix = or_die (Rv_serve.Loadgen.mix_of_string mix) in
    let s =
      or_die (Rv_serve.Loadgen.run ~port ~conns ~requests ~seed ~mix ~churn ())
    in
    if dump then List.iter print_endline s.Rv_serve.Loadgen.transcript;
    if json then
      print_endline (Rv_obs.Json.to_string (Rv_serve.Loadgen.summary_json s))
    else Rv_serve.Loadgen.print_summary stdout s;
    (* Server-measured latency must nest inside the client-measured one;
       a violation is a clock or accounting bug, never rounding. *)
    match Rv_serve.Loadgen.server_clock_check s with
    | Ok () -> ()
    | Error msg ->
        Printf.eprintf "rv loadgen: SERVER/CLIENT CLOCK CHECK FAILED: %s\n%!"
          msg;
        exit 1
  in
  let conns =
    Arg.(value & opt int 4 & info [ "c"; "conns" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let requests =
    Arg.(value & opt int 200 & info [ "n"; "requests" ] ~docv:"N" ~doc:"Total requests.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Request-mix seed.")
  in
  let mix =
    Arg.(
      value & opt string "cached"
      & info [ "mix" ] ~docv:"MIX"
          ~doc:
            "Request mix: cached, mixed, heavy or index (index cycles the \
             canonical bake lattice — see rv bake).")
  in
  let churn =
    Arg.(
      value & opt int 0
      & info [ "churn" ] ~docv:"N"
          ~doc:
            "Additionally run N deterministic connect/one-request/disconnect \
             cycles from a dedicated thread — reproducible registry churn \
             mixed into the seeded stream.")
  in
  let dump =
    Arg.(
      value & flag
      & info [ "dump" ]
          ~doc:
            "Print the reply transcript (sorted by request id) to stdout \
             before the summary — the deterministic byte stream the CI \
             golden compares across -j1/-j2 and cache on/off.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the summary as one JSON object.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a running rv serve instance with a seeded deterministic load")
    Term.(
      const loadgen $ port_arg $ conns $ requests $ seed $ mix $ churn $ dump
      $ json)

(* chaos / fuzz — the rv_chaos harness.

   Both spawn an in-process server on an ephemeral port when --port is 0
   (the default), so `rv chaos` and `rv fuzz` work standalone in CI; a
   nonzero --port targets an externally started rv serve instead. *)

let chaos_host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Server address.")

let chaos_port_arg =
  Arg.(
    value & opt int 0
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:
          "Target server port; 0 (the default) spawns an in-process rv \
           serve on an ephemeral port for the duration of the run.")

let chaos_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Scenario/cell seed.")

(* Spawn the in-process target when [port = 0]; the returned finalizer
   drains it.  The queue is kept small so the storm scenario's burst
   (2 x cap + 4) stays cheap. *)
let with_chaos_server ~port ~queue ~jobs f =
  if port <> 0 then f port
  else begin
    let jobs = if jobs > 0 then jobs else 1 in
    let server =
      Rv_serve.Server.start
        { Rv_serve.Server.default_config with port = 0; jobs; queue_cap = queue }
    in
    Fun.protect
      ~finally:(fun () -> Rv_serve.Server.stop server)
      (fun () -> f (Rv_serve.Server.port server))
  end

let chaos_queue_arg =
  Arg.(
    value & opt int 4
    & info [ "queue" ] ~docv:"N"
        ~doc:"Admission-queue bound for the spawned in-process server.")

let chaos_cmd =
  let chaos port host seed only soak sample_period drift_frac out queue jobs =
    with_chaos_server ~port ~queue ~jobs @@ fun port ->
    match soak with
    | Some duration_s ->
        let r =
          or_die
            (Rv_chaos.Soak.run ~sample_period_s:sample_period ~drift_frac
               ~host ~port ~duration_s ~seed ())
        in
        Rv_chaos.Soak.print_report stdout r;
        Rv_engine.Sink.write_file_atomic out (fun oc ->
            output_string oc
              (Rv_obs.Json.to_string (Rv_chaos.Soak.report_json r));
            output_char oc '\n');
        Printf.printf "wrote %s\n%!" out;
        if not r.Rv_chaos.Soak.r_pass then exit 1
    | None ->
        let only = match only with [] -> None | l -> Some l in
        let outcomes =
          or_die (Rv_chaos.Scenario.run_all ?only ~host ~port ~seed ())
        in
        let failed =
          List.filter (fun o -> not o.Rv_chaos.Scenario.o_passed) outcomes
        in
        List.iter
          (fun o ->
            Printf.printf "%-24s %s  %s\n" o.Rv_chaos.Scenario.o_name
              (if o.Rv_chaos.Scenario.o_passed then "ok  " else "FAIL")
              o.Rv_chaos.Scenario.o_detail)
          outcomes;
        Printf.printf "chaos: %d/%d scenarios passed\n%!"
          (List.length outcomes - List.length failed)
          (List.length outcomes);
        (match failed with [] -> () | _ -> exit 1)
  in
  let only =
    Arg.(
      value
      & opt_all string []
      & info [ "only" ] ~docv:"NAME"
          ~doc:
            ("Run only this scenario (repeatable).  Catalog: "
            ^ String.concat ", " Rv_chaos.Scenario.names
            ^ "."))
  in
  let soak =
    Arg.(
      value
      & opt (some float) None
      & info [ "soak" ] ~docv:"SECONDS"
          ~doc:
            "Soak mode: run the mixed hostile+clean workload for this long \
             while scraping Prometheus gauges, fit a drift line per gauge \
             and fail on non-flat memory or stuck connections.")
  in
  let sample_period =
    Arg.(
      value & opt float 1.0
      & info [ "sample-period" ] ~docv:"SECONDS"
          ~doc:"Soak telemetry scrape interval.")
  in
  let drift_frac =
    Arg.(
      value & opt float 0.25
      & info [ "drift-frac" ] ~docv:"FRAC"
          ~doc:
            "Soak flatness tolerance: fitted growth over the window must \
             stay within this fraction of the gauge's mean (floored above \
             allocator noise).")
  in
  let out =
    Arg.(
      value & opt string "BENCH_chaos.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Soak report destination.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the fault-injection scenario catalog (or --soak) against an \
          rv serve instance and assert the serving contract")
    Term.(
      const chaos $ chaos_port_arg $ chaos_host_arg $ chaos_seed_arg $ only
      $ soak $ sample_period $ drift_frac $ out $ chaos_queue_arg $ jobs_arg)

let fuzz_cmd =
  let fuzz port seed cells budget plant checks fixture_dir repro no_serve queue
      jobs =
    let checks =
      match checks with
      | [] -> Rv_chaos.Fuzz.all_checks
      | l -> List.map (fun s -> or_die (Rv_chaos.Fuzz.check_of_string s)) l
    in
    if plant then
      Rv_chaos.Fuzz.set_planted_fault (Some Rv_chaos.Fuzz.planted_default);
    let with_server f =
      if no_serve then f None
      else with_chaos_server ~port ~queue ~jobs (fun p -> f (Some p))
    in
    with_server @@ fun serve_port ->
    match repro with
    | Some path ->
        (* Replay a committed fixture: a clean tree answers "no mismatch";
           with --plant the planted fixture must still reproduce. *)
        let check, cell = or_die (Rv_chaos.Shrink.read_fixture path) in
        (match Rv_chaos.Fuzz.eval ?serve_port check cell with
        | Ok () ->
            Printf.printf "fuzz: %s: no mismatch (%s)\n%!" path
              (Rv_chaos.Fuzz.cell_to_string cell)
        | Error m ->
            Printf.printf "fuzz: %s: MISMATCH reproduced (%s)\n  expected %s\n  actual   %s\n%!"
              path
              (Rv_chaos.Fuzz.cell_to_string m.Rv_chaos.Fuzz.m_cell)
              m.Rv_chaos.Fuzz.m_expected m.Rv_chaos.Fuzz.m_actual;
            exit 1)
    | None -> (
        let r =
          Rv_chaos.Fuzz.run ?serve_port ~checks ~seed ~cells ~budget_s:budget
            ()
        in
        Printf.printf "fuzz: seed %d: %d cells, %d checks\n%!" seed
          r.Rv_chaos.Fuzz.cells_run r.Rv_chaos.Fuzz.checks_run;
        match r.Rv_chaos.Fuzz.mismatch with
        | None -> Printf.printf "fuzz: no mismatches\n%!"
        | Some m ->
            let oracle c =
              match Rv_chaos.Fuzz.eval ?serve_port m.Rv_chaos.Fuzz.m_check c with
              | Ok () -> false
              | Error _ -> true
            in
            let minimal, stats =
              Rv_chaos.Shrink.shrink ~oracle m.Rv_chaos.Fuzz.m_cell
            in
            (* Re-evaluate the minimum so the fixture's expected/actual
               context describes the shrunk cell, not the original. *)
            let m =
              match Rv_chaos.Fuzz.eval ?serve_port m.Rv_chaos.Fuzz.m_check minimal with
              | Error m' -> m'
              | Ok () -> { m with Rv_chaos.Fuzz.m_cell = minimal }
            in
            let path = Rv_chaos.Shrink.write_fixture ~dir:fixture_dir m in
            Printf.printf
              "fuzz: MISMATCH (%s)\n  cell     %s\n  expected %s\n  actual   %s\n\
               fuzz: shrunk in %d steps (%d accepted) -> %s\n%!"
              (Rv_chaos.Fuzz.check_to_string m.Rv_chaos.Fuzz.m_check)
              (Rv_chaos.Fuzz.cell_to_string m.Rv_chaos.Fuzz.m_cell)
              m.Rv_chaos.Fuzz.m_expected m.Rv_chaos.Fuzz.m_actual
              stats.Rv_chaos.Shrink.s_steps stats.Rv_chaos.Shrink.s_accepted
              path;
            exit 1)
  in
  let cells =
    Arg.(
      value & opt int 200
      & info [ "n"; "cells" ] ~docv:"N"
          ~doc:"Random cells to draw (0 = unbounded, bounded by --budget).")
  in
  let budget =
    Arg.(
      value & opt float 0.
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:"Stop after this much wall clock (0 = no time box).")
  in
  let plant =
    Arg.(
      value & flag
      & info [ "plant" ]
          ~doc:
            "Install the built-in planted fault (test-only perturbation of \
             the Traj fast path) so the shrinker and fixture pipeline can \
             be exercised on a clean tree.")
  in
  let checks =
    Arg.(
      value
      & opt_all string []
      & info [ "check" ] ~docv:"CHECK"
          ~doc:
            "Restrict to this differential check (repeatable): traj_vs_sim, \
             serve_vs_direct or sym_on_off.  Default: all three.")
  in
  let fixture_dir =
    Arg.(
      value & opt string "test/fixtures"
      & info [ "fixture-dir" ] ~docv:"DIR"
          ~doc:"Where minimized reproducer fixtures are written.")
  in
  let repro =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"FILE"
          ~doc:"Replay one fixture file instead of fuzzing.")
  in
  let no_serve =
    Arg.(
      value & flag
      & info [ "no-serve" ]
          ~doc:
            "Skip the serve-vs-direct check's server (the check is then \
             skipped unless --port targets an external one).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: seeded random cells asserting Traj.meet \
          against Sim.run, symmetry on against off, and serve replies \
          against direct computation; mismatches are shrunk to committed \
          reproducer fixtures")
    Term.(
      const fuzz $ chaos_port_arg $ chaos_seed_arg $ cells $ budget $ plant
      $ checks $ fixture_dir $ repro $ no_serve $ chaos_queue_arg $ jobs_arg)

(* obs — flight-recorder client *)

let obs_scrape ~host ~port ~last =
  let req = Printf.sprintf {|{"type":"obs","last":%d}|} last in
  match Rv_serve.Loadgen.rpc ~host ~port req with
  | Error e -> Error e
  | Ok line -> (
      match Rv_obs.Json.parse line with
      | Error e -> Error (Printf.sprintf "unparseable obs reply: %s" e)
      | Ok j -> (
          match Rv_obs.Json.member "records" j with
          | Some (Rv_obs.Json.List rs) ->
              Ok (List.filter_map Rv_serve.Recorder.of_json rs)
          | _ ->
              Error
                (Printf.sprintf "unexpected obs reply: %s"
                   (String.sub line 0 (min 200 (String.length line))))))

let obs_record_line (r : Rv_serve.Recorder.record) =
  Printf.sprintf "#%-6d %-5s %-6s %-9s %-14s %8d us  %s" r.rr_id r.rr_kind
    r.rr_path r.rr_status
    (Rv_serve.Recorder.flag_to_string r.rr_flag)
    r.rr_total_us
    (String.concat " "
       (List.map
          (fun (name, _, dur) -> Printf.sprintf "%s=%.0fus" name dur)
          r.rr_stages))

let obs_cmd =
  let obs action host port last chrome interval =
    let scrape_or_die () =
      match obs_scrape ~host ~port ~last with
      | Ok rs -> rs
      | Error e ->
          Printf.eprintf "rv obs: %s\n%!" e;
          exit 1
    in
    match action with
    | `Tail ->
        let rs = scrape_or_die () in
        if rs = [] then print_endline "rv obs: recorder is empty"
        else List.iter (fun r -> print_endline (obs_record_line r)) rs
    | `Watch ->
        (* Poll the recorder, printing only records newer than the last
           one seen.  The obs probe itself is admin traffic and is never
           recorded, so watching does not pollute what it watches. *)
        let newest = ref min_int in
        let rec loop () =
          let rs = scrape_or_die () in
          List.iter
            (fun (r : Rv_serve.Recorder.record) ->
              if r.rr_id > !newest then begin
                newest := r.rr_id;
                print_endline (obs_record_line r)
              end)
            rs;
          flush stdout;
          Unix.sleepf interval;
          loop ()
        in
        loop ()
    | `Dump -> (
        let rs = scrape_or_die () in
        match chrome with
        | Some file ->
            let oc = open_out file in
            output_string oc
              (Rv_obs.Json.to_string (Rv_serve.Recorder.chrome_json rs));
            output_char oc '\n';
            close_out oc;
            Printf.printf "rv obs: wrote %d request lane(s) to %s\n%!"
              (List.length rs) file
        | None ->
            List.iter
              (fun r ->
                print_endline
                  (Rv_obs.Json.to_string (Rv_serve.Recorder.to_json r)))
              rs)
  in
  let action =
    Arg.(
      value
      & pos 0 (enum [ ("tail", `Tail); ("watch", `Watch); ("dump", `Dump) ])
          `Tail
      & info [] ~docv:"ACTION"
          ~doc:
            "$(b,tail) prints the retained records once; $(b,watch) polls \
             and prints new ones as they appear; $(b,dump) emits records as \
             JSON lines, or a Chrome trace with $(b,--chrome).")
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")
  in
  let last =
    Arg.(
      value & opt int 64
      & info [ "last" ] ~docv:"N"
          ~doc:"Fetch at most the newest N records (server caps at 4096).")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "With $(b,dump): write a Chrome/Perfetto trace, one lane per \
             request with its stage waterfall, instead of JSON lines.")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Poll period for $(b,watch).")
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Inspect a running rv serve's anomaly flight recorder: tail or \
          watch the retained requests, or dump them as a Chrome trace of \
          per-stage waterfalls")
    Term.(const obs $ action $ host $ port_arg $ last $ chrome $ interval)

(* version *)

let version_cmd =
  let version json =
    let fields = Rv_serve.Server.version_fields () in
    if json then
      print_endline
        (Rv_obs.Json.to_string
           (Rv_obs.Json.Obj
              (List.filter
                 (fun (k, _) -> not (String.equal k "status"))
                 fields)))
    else begin
      Printf.printf "rv %s (ocaml %s, profile %s)\n" Rv_serve.Build_meta.version
        Rv_serve.Build_meta.ocaml_version Rv_serve.Build_meta.profile;
      Printf.printf "index format: v%d\n" Rv_index.Format.version;
      let features =
        match List.assoc_opt "features" fields with
        | Some (Rv_obs.Json.List fs) ->
            List.filter_map
              (function Rv_obs.Json.Str s -> Some s | _ -> None)
              fs
        | _ -> []
      in
      Printf.printf "features: %s\n" (String.concat ", " features)
    end
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print as one JSON object.") in
  Cmd.v
    (Cmd.info "version" ~doc:"Print the build's version and feature flags")
    Term.(const version $ json)

let () =
  (* RV_DEBUG=1 surfaces per-meeting simulator events on stderr. *)
  if Sys.getenv_opt "RV_DEBUG" <> None then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let doc = "deterministic rendezvous in networks (Miller & Pelc, PODC 2014)" in
  let info = Cmd.info "rv" ~version:Rv_serve.Build_meta.version ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; trace_cmd; sweep_cmd; explore_cmd; lb_cmd; exp_cmd; selftest_cmd; async_cmd; gather_cmd; lint_cmd; dot_cmd; bake_cmd; serve_cmd; loadgen_cmd; chaos_cmd; fuzz_cmd; obs_cmd; version_cmd ]))

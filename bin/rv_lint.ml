(* rv_lint — standalone determinism & domain-safety linter.

   Same engine as `rv lint`; shipped as its own binary so CI and editors
   can run the gate without linking the whole simulator. *)

open Cmdliner

let paths_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"PATH"
        ~doc:"Files or directories to lint (default: lib bin bench).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the machine-readable JSON report on stdout.")

let rules_arg =
  Arg.(
    value & opt (some string) None
    & info [ "rules" ] ~docv:"R1,R2,..."
        ~doc:"Comma-separated subset of rules to run (default: all of R1..R5).")

let catalog_arg =
  Arg.(
    value & flag
    & info [ "catalog" ] ~doc:"Print the rule catalog with rationale and exit.")

let main paths json rules catalog =
  if catalog then begin
    print_string (Rv_lint.Cli.catalog ());
    0
  end
  else Rv_lint.Cli.run ~json ~rules ~paths ()

let cmd =
  let doc = "static determinism & domain-safety checks for the rendezvous tree" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every .ml under the given paths and enforces the repo's \
         determinism rules (R1..R5): no unseeded randomness or wall-clock \
         reads, no hash-iteration-order leaks, no unsynchronised top-level \
         mutable state in worker-linked modules, no polymorphic \
         compare/hash on float-bearing values, and balanced observability \
         spans.";
      `P
        "Findings are suppressed only by a reasoned inline comment: \
         (* rv_lint: allow R3 -- reason *).  Bare allows are rejected.";
      `S Manpage.s_exit_status;
      `P "0 on a clean tree, 1 on unsuppressed findings, 2 on usage errors.";
    ]
  in
  Cmd.v
    (Cmd.info "rv_lint" ~version:"1.0.0" ~doc ~man)
    Term.(const main $ paths_arg $ json_arg $ rules_arg $ catalog_arg)

let () = exit (Cmd.eval' cmd)

(* rv_lint — standalone determinism & concurrency linter.

   Same engine as `rv lint`; shipped as its own binary so CI and editors
   can run the gate without linking the whole simulator. *)

open Cmdliner

let paths_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"PATH"
        ~doc:
          "Files or directories to lint (default: the roots selected by \
           $(b,--scope)).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the machine-readable JSON report on stdout.")

let rules_arg =
  Arg.(
    value
    & opt ~vopt:(Some "list") (some string) None
    & info [ "rules" ] ~docv:"R1,R2,..."
        ~doc:
          "Comma-separated subset of rules to run (default: all of R1..R9).  \
           With no value, list the full catalog and exit.")

let catalog_arg =
  Arg.(
    value & flag
    & info [ "catalog" ] ~doc:"Print the rule catalog with rationale and exit.")

let scope_arg =
  Arg.(
    value & opt string "full"
    & info [ "scope" ] ~docv:"full|core"
        ~doc:
          "Default path set when no PATH is given: $(b,full) = lib bin bench \
           test examples; $(b,core) = lib bin bench (the pre-v2 walk).")

let no_typed_arg =
  Arg.(
    value & flag
    & info [ "no-typed" ]
        ~doc:
          "Skip the typed pass (R6..R9) over .cmt artifacts; run only the \
           syntactic source pass.")

let build_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "build-dir" ] ~docv:"DIR"
        ~doc:
          "Directory holding dune's .cmt artifacts for the typed pass \
           (default: _build/default).")

let hotpaths_arg =
  Arg.(
    value & opt (some string) None
    & info [ "hotpaths" ] ~docv:"FILE"
        ~doc:
          "Hot-path manifest naming the functions held to R8's \
           no-allocation discipline and R7's dispatcher checks (default: \
           lint_hotpaths.txt when present).")

let baseline_arg =
  Arg.(
    value & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Diff mode: fail (exit 1) only on findings not in this checked-in \
           baseline; warn on stderr for baselined findings that no longer \
           occur.")

let write_baseline_arg =
  Arg.(
    value & opt (some string) None
    & info [ "write-baseline" ] ~docv:"FILE"
        ~doc:"Write the current findings as a fresh baseline and exit 0.")

let sarif_arg =
  Arg.(
    value & opt (some string) None
    & info [ "sarif" ] ~docv:"FILE"
        ~doc:
          "Additionally write the full (pre-baseline) report as SARIF 2.1.0 \
           to FILE.")

let main paths json rules catalog scope no_typed build_dir hotpaths baseline
    write_baseline sarif =
  if catalog then begin
    print_string (Rv_lint.Cli.catalog ());
    0
  end
  else
    Rv_lint.Cli.run ~scope ~typed:(not no_typed) ~build_dir ~hotpaths ~baseline
      ~write_baseline ~sarif ~json ~rules ~paths ()

let cmd =
  let doc = "static determinism & concurrency checks for the rendezvous tree" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Two passes.  The source pass parses every .ml under the given paths \
         and enforces the repo's determinism rules (R1..R5): no unseeded \
         randomness or wall-clock reads, no hash-iteration-order leaks, no \
         unsynchronised top-level mutable state in worker-linked modules, no \
         polymorphic compare/hash on float-bearing values, and balanced \
         observability spans.";
      `P
        "The typed pass reads the .cmt artifacts dune already produced and \
         enforces the concurrency and hot-path rules (R6..R9): an acyclic, \
         consistently ordered mutex-acquisition graph; no blocking calls \
         while a lock is held or inside a dispatcher hot path; no allocation \
         in the loop bodies of functions named in lint_hotpaths.txt; no \
         raise escaping a Thread.create/Domain.spawn entrypoint unhandled.";
      `P
        "Findings are suppressed only by a reasoned inline comment: \
         (* rv_lint: allow R3 -- reason *).  Bare allows are rejected.  \
         Accepted debt lives in a checked-in baseline (see $(b,--baseline)) \
         so CI fails only on new findings.";
      `S Manpage.s_exit_status;
      `P "0 on a clean tree, 1 on unsuppressed findings, 2 on usage errors.";
    ]
  in
  Cmd.v
    (Cmd.info "rv_lint" ~version:"2.0.0" ~doc ~man)
    Term.(
      const main $ paths_arg $ json_arg $ rules_arg $ catalog_arg $ scope_arg
      $ no_typed_arg $ build_dir_arg $ hotpaths_arg $ baseline_arg
      $ write_baseline_arg $ sarif_arg)

let () = exit (Cmd.eval' cmd)

#!/usr/bin/env bash
# End-to-end smoke test for the rv_chaos harness, as run by the CI
# chaos-smoke job.
#
#   1. boot a server (--queue 4) and run the full fault-injection
#      scenario catalog against it over real TCP; every scenario and the
#      shared contract (health up, no stuck registry entries, clean
#      control reply byte-identical) must pass;
#   2. run the catalog again against the SAME server: salts must stay
#      fresh (the result cache cannot defuse the hostile queries) and
#      the registry must still settle;
#   3. rv loadgen --churn: the churn cycles must be accounted in the
#      summary and the run must stay clock-clean;
#   4. self-spawned catalog run (rv chaos with no --port boots its own
#      server) — what a developer runs locally with no setup;
#   5. a 60s mini-soak: mixed hostile+clean workload under telemetry
#      watch; BENCH_chaos.json must report pass=true, every watched
#      gauge flat, the queue settled and zero stuck connections;
#   6. planted-fault fuzzing: two runs at the same seed must emit
#      byte-identical minimized reproducer fixtures; the fixture must
#      replay as a mismatch under --plant and as clean without it;
#   7. a clean fuzz sweep over all three differential checks must find
#      nothing;
#   8. SIGINT the external server and require the drained line.
#
# Usage: scripts/chaos_smoke.sh [path-to-rv.exe]
# Runs from the repository root; leaves BENCH_chaos.json in the cwd for
# the CI artifact.

set -euo pipefail

RV=${1:-_build/default/bin/rv.exe}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

SEED=11

boot() { # boot <logfile> <extra-args...>; echoes "pid port"
  local log=$1; shift
  "$RV" serve --port 0 "$@" >"$log" 2>&1 &
  local pid=$!
  local port=""
  for _ in $(seq 1 50); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || { echo "server did not boot; log:" >&2; cat "$log" >&2; exit 1; }
  echo "$pid $port"
}

drain() { # drain <pid> <logfile>
  local pid=$1 log=$2
  kill -INT "$pid"
  for _ in $(seq 1 100); do
    if grep -q "rv serve: drained" "$log"; then return 0; fi
    sleep 0.1
  done
  echo "server did not drain gracefully; log:" >&2; cat "$log" >&2; exit 1
}

echo "== chaos smoke: scenario catalog against an external server =="
read -r PID PORT < <(boot "$TMP/serve.log" --jobs 1 --queue 4)
"$RV" chaos --port "$PORT" --seed $SEED

echo "== chaos smoke: catalog again, same server (cache must not defuse it) =="
"$RV" chaos --port "$PORT" --seed $((SEED + 1))

echo "== chaos smoke: loadgen churn cycles are accounted =="
"$RV" loadgen --port "$PORT" --conns 2 --requests 30 --seed $SEED \
  --mix cached --churn 12 --json >"$TMP/churn.summary"
python3 - "$TMP/churn.summary" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["churned"] == 12, f"expected 12 churned cycles: {s}"
assert s["errors"] == 0, f"churn run saw errors: {s}"
assert s["ok"] == s["requests"] + s["churned"], f"ok must count churn replies: {s}"
print(f"ok: {s['churned']} churn cycles on top of {s['requests']} dealt requests")
EOF
drain "$PID" "$TMP/serve.log"

echo "== chaos smoke: self-spawned catalog run =="
"$RV" chaos --seed $((SEED + 2))

echo "== chaos smoke: 60s mini-soak =="
"$RV" chaos --soak 60 --seed $SEED --out BENCH_chaos.json
python3 - BENCH_chaos.json <<'EOF'
import json
b = json.load(open("BENCH_chaos.json"))
assert b["pass"], f"soak failed: {b['failures']}"
assert b["samples"] >= 30, f"too few telemetry samples: {b['samples']}"
assert b["queue_settled"], b
assert b["stuck_connections"] == 0, b
assert b["failures"] == [], b["failures"]
for g in b["gauges"]:
    assert g["flat"], f"gauge drifting: {g}"
print(f"soak OK: {b['duration_s']:.0f}s, {b['samples']} samples,"
      f" {b['clean_requests']} clean requests, {b['hostile_runs']} hostile runs,"
      f" {len(b['gauges'])} gauges flat")
EOF

echo "== chaos smoke: planted fuzz is deterministic and shrinks =="
rc=0; "$RV" fuzz --plant --seed 42 --cells 2000 --no-serve \
  --fixture-dir "$TMP/fx1" >"$TMP/fuzz1.out" || rc=$?
[ "$rc" -eq 1 ] || { echo "planted fuzz should exit 1, got $rc" >&2; exit 1; }
cat "$TMP/fuzz1.out"
rc=0; "$RV" fuzz --plant --seed 42 --cells 2000 --no-serve \
  --fixture-dir "$TMP/fx2" >"$TMP/fuzz2.out" || rc=$?
[ "$rc" -eq 1 ] || { echo "second planted fuzz should exit 1, got $rc" >&2; exit 1; }
FX1=$(ls "$TMP/fx1"); FX2=$(ls "$TMP/fx2")
[ "$FX1" = "$FX2" ] || { echo "fixture names differ: $FX1 vs $FX2" >&2; exit 1; }
[ "$(echo "$FX1" | wc -l)" -eq 1 ] || { echo "expected exactly one fixture" >&2; exit 1; }
cmp "$TMP/fx1/$FX1" "$TMP/fx2/$FX1"
echo "ok: same seed, byte-identical fixture $FX1"

rc=0; "$RV" fuzz --plant --no-serve --repro "$TMP/fx1/$FX1" || rc=$?
[ "$rc" -eq 1 ] || { echo "planted replay should reproduce (exit 1), got $rc" >&2; exit 1; }
"$RV" fuzz --no-serve --repro "$TMP/fx1/$FX1"
echo "ok: fixture reproduces under --plant and replays clean without it"

echo "== chaos smoke: clean fuzz sweep finds nothing =="
"$RV" fuzz --seed $SEED --cells 300

echo "chaos smoke: all checks passed"

#!/usr/bin/env bash
# Run a 2-domain sweep under ThreadSanitizer when the active OCaml switch
# supports it, and skip cleanly otherwise.
#
# TSan instrumentation for OCaml landed in 5.2 (installed via the
# ocaml-option-tsan switch option, which makes `ocamlopt -config` report
# "tsan: true").  On earlier switches -- including the 5.1 toolchain this
# container ships -- there is nothing to instrument with, so this script
# prints a skip notice and exits 0.  That makes `dune build @tsan` (and the
# allowed-to-fail CI job wrapping it) safe on every switch.
#
# Usage: tsan.sh <path-to-rv.exe>

set -u

rv_exe="${1:?usage: tsan.sh <path-to-rv.exe>}"

# The static concurrency gate (rv_lint R6/R7/R9) and this dynamic race
# gate hunt the same bugs; keep them coupled so neither drifts.  When
# dune invokes this script via `dune build @tsan`, the alias already
# depends on @lint (and re-entrant dune would deadlock on the build
# lock), so only run it when invoked directly.
if [ -z "${INSIDE_DUNE:-}" ]; then
  echo "tsan: running the lint gate first (dune build @lint)"
  if ! dune build @lint; then
    echo "tsan: ABORTED (lint gate failed)" >&2
    exit 1
  fi
fi

config="$(ocamlfind ocamlopt -config 2>/dev/null || ocamlopt -config 2>/dev/null || true)"

if ! printf '%s\n' "$config" | grep -q '^tsan:[[:space:]]*true'; then
  echo "tsan: skipped (this switch has no ThreadSanitizer support;" \
       "needs OCaml >= 5.2 built with ocaml-option-tsan)"
  exit 0
fi

# halt_on_error makes the sweep fail fast on the first data race instead of
# drowning it in follow-on reports; history_size buys deeper stacks for the
# domain pool.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 history_size=7}"

echo "tsan: running 2-domain sweep under ThreadSanitizer"
"$rv_exe" sweep -j 2 --space 16 --pairs 32
status=$?
if [ "$status" -ne 0 ]; then
  echo "tsan: FAILED (exit $status)" >&2
  exit "$status"
fi
echo "tsan: clean"

#!/usr/bin/env bash
# End-to-end smoke test for rv serve, as run by the CI serve-smoke job.
#
#   1. boot a server, drive it with the seeded mixed workload, and diff
#      the reply transcript against test/golden/serve_mix.golden;
#   2. repeat at --jobs 2: the transcript must be byte-identical;
#   3. repeat with the cache disabled: byte-identical again;
#   4. boot with --queue 0 and a heavy mix: every compute query must be
#      shed with an "overloaded" reply while health stays answerable;
#   5. scrape the Prometheus exposition twice around extra traffic: the
#      body must parse, carry no duplicate series, declare a TYPE for
#      every sample, and every counter must be monotone;
#   6. with --slow-us 0 every query is a retained anomaly: `rv obs tail`
#      must list them and `rv obs dump --chrome` must write a parseable
#      Chrome trace (kept as flight_dump.json for the CI artifact);
#   7. SIGINT each server and require the "drained" line (graceful drain).
#
# Usage: scripts/serve_smoke.sh [path-to-rv.exe]
# Runs from the repository root; leaves transcripts in $TMPDIR and the
# flight-recorder dump in ./flight_dump.json.

set -euo pipefail

RV=${1:-_build/default/bin/rv.exe}
GOLDEN=test/golden/serve_mix.golden
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

SEED=7
REQUESTS=60
CONNS=3

boot() { # boot <logfile> <extra-args...>; echoes "pid port"
  local log=$1; shift
  "$RV" serve --port 0 "$@" >"$log" 2>&1 &
  local pid=$!
  local port=""
  for _ in $(seq 1 50); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || { echo "server did not boot; log:" >&2; cat "$log" >&2; exit 1; }
  echo "$pid $port"
}

drain() { # drain <pid> <logfile>: SIGINT, then poll for the drained line
  # (the server is not a child of this shell -- it was spawned inside the
  # boot process substitution -- so `wait` cannot be used here)
  local pid=$1 log=$2
  kill -INT "$pid"
  for _ in $(seq 1 100); do
    if grep -q "rv serve: drained" "$log"; then return 0; fi
    sleep 0.1
  done
  echo "server did not drain gracefully; log:" >&2; cat "$log" >&2; exit 1
}

transcript() { # transcript <port> <outfile>
  local port=$1 out=$2
  # Full output to a file first: piping straight into head would SIGPIPE
  # loadgen on the trailing summary line and trip pipefail.
  "$RV" loadgen --port "$port" --conns $CONNS --requests $REQUESTS \
    --seed $SEED --mix mixed --dump --json >"$out.full"
  head -n $REQUESTS "$out.full" >"$out"
}

echo "== serve smoke: golden transcript at --jobs 1 =="
read -r PID PORT < <(boot "$TMP/j1.log" --jobs 1)
transcript "$PORT" "$TMP/j1.transcript"
drain "$PID" "$TMP/j1.log"
diff -u "$GOLDEN" "$TMP/j1.transcript"
echo "ok: -j1 matches the golden"

echo "== serve smoke: byte-identical at --jobs 2 =="
read -r PID PORT < <(boot "$TMP/j2.log" --jobs 2)
transcript "$PORT" "$TMP/j2.transcript"
drain "$PID" "$TMP/j2.log"
cmp "$TMP/j1.transcript" "$TMP/j2.transcript"
echo "ok: -j2 transcript byte-identical"

echo "== serve smoke: byte-identical with the cache disabled =="
read -r PID PORT < <(boot "$TMP/nc.log" --jobs 1 --cache-mb 0)
transcript "$PORT" "$TMP/nc.transcript"
drain "$PID" "$TMP/nc.log"
cmp "$TMP/j1.transcript" "$TMP/nc.transcript"
echo "ok: cache-off transcript byte-identical"

echo "== serve smoke: admission control sheds under --queue 0 =="
read -r PID PORT < <(boot "$TMP/q0.log" --jobs 1 --queue 0)
"$RV" loadgen --port "$PORT" --conns 2 --requests 40 --seed $SEED \
  --mix heavy --json >"$TMP/q0.summary"
drain "$PID" "$TMP/q0.log"
python3 - "$TMP/q0.summary" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["overloaded"] == s["requests"], f"expected every request shed: {s}"
print(f"ok: all {s['overloaded']} heavy requests answered 'overloaded'")
EOF

echo "== serve smoke: prometheus scrape is well-formed and monotone =="
read -r PID PORT < <(boot "$TMP/prom.log" --jobs 1)
"$RV" loadgen --port "$PORT" --conns 2 --requests 30 --seed $SEED \
  --mix cached --json >"$TMP/prom.summary"
python3 - "$PORT" <<'EOF'
import json, socket, sys

port = int(sys.argv[1])

def rpc(line):
    with socket.create_connection(("127.0.0.1", port)) as s:
        f = s.makefile("rw")
        f.write(line + "\n")
        f.flush()
        return json.loads(f.readline())

def scrape():
    r = rpc('{"type":"metrics","format":"prometheus"}')
    assert r["status"] == "ok", r
    families, series = {}, {}
    for ln in r["body"].splitlines():
        if ln.startswith("# TYPE "):
            _, _, name, typ = ln.split(" ")
            assert name not in families, f"duplicate family {name}"
            families[name] = typ
        elif ln and not ln.startswith("#"):
            key, val = ln.rsplit(" ", 1)
            assert key not in series, f"duplicate series {key}"
            series[key] = float(val)  # also rejects unparseable values
    for key in series:
        fam = key.split("{", 1)[0]
        assert fam in families, f"series {key} has no TYPE declaration"
    for fam in ("rv_serve_requests_total", "rv_serve_latency_us",
                "rv_serve_recorder_records", "rv_serve_queue_depth"):
        assert fam in families, f"missing family {fam}"
    return families, series

fam1, s1 = scrape()
# more traffic between the scrapes, then: counters never move backwards
rpc('{"type":"run","graph":"ring:8","algorithm":"cheap","label_a":1,"label_b":2}')
fam2, s2 = scrape()
assert fam1 == fam2, "family set changed between scrapes"
for key, v1 in s1.items():
    if fam1[key.split("{", 1)[0]] == "counter":
        assert s2.get(key, -1.0) >= v1, f"counter {key} went backwards"
assert s2["rv_serve_requests_total"] > s1["rv_serve_requests_total"]
print(f"ok: {len(s1)} series, {len(fam1)} families, counters monotone")
EOF
drain "$PID" "$TMP/prom.log"

echo "== serve smoke: flight recorder tail + chrome dump =="
# --slow-us 0 turns every query into a retained "slow" anomaly, so the
# recorder is guaranteed non-empty after any traffic at all.
read -r PID PORT < <(boot "$TMP/obs.log" --jobs 1 --slow-us 0)
"$RV" loadgen --port "$PORT" --conns 2 --requests 20 --seed $SEED \
  --mix cached --json >"$TMP/obs.summary"
"$RV" obs tail --port "$PORT" --last 8 | tee "$TMP/obs.tail"
grep -q "slow" "$TMP/obs.tail" || {
  echo "rv obs tail shows no slow-flagged records" >&2; exit 1; }
"$RV" obs dump --port "$PORT" --chrome flight_dump.json
drain "$PID" "$TMP/obs.log"
python3 - flight_dump.json <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "empty traceEvents"
spans = [e for e in events if e["ph"] == "X"]
lanes = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
assert spans, "no request spans"
assert all("dur" in e for e in spans), "span without dur"
assert lanes, "no per-request lane names"
cats = {e.get("cat") for e in spans}
assert "request" in cats and "stage" in cats, f"missing cats: {sorted(cats)}"
print(f"ok: flight_dump.json has {len(spans)} spans in {len(lanes)} lanes")
EOF

echo "serve smoke: all checks passed"

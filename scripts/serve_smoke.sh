#!/usr/bin/env bash
# End-to-end smoke test for rv serve, as run by the CI serve-smoke job.
#
#   1. boot a server, drive it with the seeded mixed workload, and diff
#      the reply transcript against test/golden/serve_mix.golden;
#   2. repeat at --jobs 2: the transcript must be byte-identical;
#   3. repeat with the cache disabled: byte-identical again;
#   4. boot with --queue 0 and a heavy mix: every compute query must be
#      shed with an "overloaded" reply while health stays answerable;
#   5. SIGINT each server and require the "drained" line (graceful drain).
#
# Usage: scripts/serve_smoke.sh [path-to-rv.exe]
# Runs from the repository root; leaves transcripts in $TMPDIR.

set -euo pipefail

RV=${1:-_build/default/bin/rv.exe}
GOLDEN=test/golden/serve_mix.golden
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

SEED=7
REQUESTS=60
CONNS=3

boot() { # boot <logfile> <extra-args...>; echoes "pid port"
  local log=$1; shift
  "$RV" serve --port 0 "$@" >"$log" 2>&1 &
  local pid=$!
  local port=""
  for _ in $(seq 1 50); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || { echo "server did not boot; log:" >&2; cat "$log" >&2; exit 1; }
  echo "$pid $port"
}

drain() { # drain <pid> <logfile>: SIGINT, then poll for the drained line
  # (the server is not a child of this shell -- it was spawned inside the
  # boot process substitution -- so `wait` cannot be used here)
  local pid=$1 log=$2
  kill -INT "$pid"
  for _ in $(seq 1 100); do
    if grep -q "rv serve: drained" "$log"; then return 0; fi
    sleep 0.1
  done
  echo "server did not drain gracefully; log:" >&2; cat "$log" >&2; exit 1
}

transcript() { # transcript <port> <outfile>
  local port=$1 out=$2
  # Full output to a file first: piping straight into head would SIGPIPE
  # loadgen on the trailing summary line and trip pipefail.
  "$RV" loadgen --port "$port" --conns $CONNS --requests $REQUESTS \
    --seed $SEED --mix mixed --dump --json >"$out.full"
  head -n $REQUESTS "$out.full" >"$out"
}

echo "== serve smoke: golden transcript at --jobs 1 =="
read -r PID PORT < <(boot "$TMP/j1.log" --jobs 1)
transcript "$PORT" "$TMP/j1.transcript"
drain "$PID" "$TMP/j1.log"
diff -u "$GOLDEN" "$TMP/j1.transcript"
echo "ok: -j1 matches the golden"

echo "== serve smoke: byte-identical at --jobs 2 =="
read -r PID PORT < <(boot "$TMP/j2.log" --jobs 2)
transcript "$PORT" "$TMP/j2.transcript"
drain "$PID" "$TMP/j2.log"
cmp "$TMP/j1.transcript" "$TMP/j2.transcript"
echo "ok: -j2 transcript byte-identical"

echo "== serve smoke: byte-identical with the cache disabled =="
read -r PID PORT < <(boot "$TMP/nc.log" --jobs 1 --cache-mb 0)
transcript "$PORT" "$TMP/nc.transcript"
drain "$PID" "$TMP/nc.log"
cmp "$TMP/j1.transcript" "$TMP/nc.transcript"
echo "ok: cache-off transcript byte-identical"

echo "== serve smoke: admission control sheds under --queue 0 =="
read -r PID PORT < <(boot "$TMP/q0.log" --jobs 1 --queue 0)
"$RV" loadgen --port "$PORT" --conns 2 --requests 40 --seed $SEED \
  --mix heavy --json >"$TMP/q0.summary"
drain "$PID" "$TMP/q0.log"
python3 - "$TMP/q0.summary" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["overloaded"] == s["requests"], f"expected every request shed: {s}"
print(f"ok: all {s['overloaded']} heavy requests answered 'overloaded'")
EOF

echo "serve smoke: all checks passed"

#!/usr/bin/env bash
# End-to-end smoke test for rv bake + indexed serving, as run by the CI
# bake-smoke job.
#
#   1. bake the loadgen index-mix lattice twice: the two files must be
#      byte-identical (bake determinism);
#   2. boot an index-less server and capture the index-mix and mixed-mix
#      transcripts -- the compute/LRU reference;
#   3. boot with --index at --jobs 1 and --jobs 2: both transcripts must
#      be byte-identical to the reference, and the index-mix run must be
#      all index hits (metrics probe);
#   4. probe health/version for the index fields (loaded, generation,
#      record count, format version);
#   5. boot against a corrupt index file: the server must degrade to
#      compute (health says index_loaded false) and still answer;
#   6. SIGINT each server and require the "drained" line.
#
# Usage: scripts/bake_smoke.sh [path-to-rv.exe]
# Runs from the repository root; leaves artifacts in $TMPDIR.

set -euo pipefail

RV=${1:-_build/default/bin/rv.exe}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

SEED=7
REQUESTS=32
CONNS=2

# The lattice matching `rv loadgen --mix index` (see Loadgen.index_mix_*).
bake() { # bake <outfile>
  "$RV" bake -o "$1" \
    --graphs ring:6,ring:8,ring:10,ring:12 \
    --algorithms cheap,fast \
    --spaces 8 --pairs 4 --max-delays 8
}

boot() { # boot <logfile> <extra-args...>; echoes "pid port"
  local log=$1; shift
  "$RV" serve --port 0 "$@" >"$log" 2>&1 &
  local pid=$!
  local port=""
  for _ in $(seq 1 50); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || { echo "server did not boot; log:" >&2; cat "$log" >&2; exit 1; }
  echo "$pid $port"
}

drain() { # drain <pid> <logfile>
  local pid=$1 log=$2
  kill -INT "$pid"
  for _ in $(seq 1 100); do
    if grep -q "rv serve: drained" "$log"; then return 0; fi
    sleep 0.1
  done
  echo "server did not drain gracefully; log:" >&2; cat "$log" >&2; exit 1
}

transcript() { # transcript <port> <mix> <outfile>
  local port=$1 mix=$2 out=$3
  "$RV" loadgen --port "$port" --conns $CONNS --requests $REQUESTS \
    --seed $SEED --mix "$mix" --dump --json >"$out.full"
  head -n $REQUESTS "$out.full" >"$out"
}

probe() { # probe <port> <request-line>; prints the reply line
  python3 - "$1" "$2" <<'EOF'
import socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
s.sendall(sys.argv[2].encode() + b"\n")
buf = b""
while not buf.endswith(b"\n"):
    chunk = s.recv(4096)
    if not chunk:
        break
    buf += chunk
s.close()
sys.stdout.write(buf.decode())
EOF
}

echo "== bake smoke: bake is byte-reproducible =="
bake "$TMP/a.rvi"
bake "$TMP/b.rvi"
cmp "$TMP/a.rvi" "$TMP/b.rvi"
echo "ok: two bakes of the same lattice are byte-identical"

echo "== bake smoke: reference transcripts without an index =="
read -r PID PORT < <(boot "$TMP/ref.log" --jobs 1)
transcript "$PORT" index "$TMP/ref.index"
transcript "$PORT" mixed "$TMP/ref.mixed"
drain "$PID" "$TMP/ref.log"

echo "== bake smoke: indexed replies byte-identical at --jobs 1 =="
read -r PID PORT < <(boot "$TMP/i1.log" --jobs 1 --index "$TMP/a.rvi")
transcript "$PORT" index "$TMP/i1.index"
transcript "$PORT" mixed "$TMP/i1.mixed"
METRICS=$(probe "$PORT" '{"type":"metrics"}')
HEALTH=$(probe "$PORT" '{"type":"health"}')
VERSION=$(probe "$PORT" '{"type":"version"}')
drain "$PID" "$TMP/i1.log"
cmp "$TMP/ref.index" "$TMP/i1.index"
cmp "$TMP/ref.mixed" "$TMP/i1.mixed"
echo "ok: index-on transcripts byte-identical to compute"

REQUESTS=$REQUESTS python3 - <<EOF
import json, os
m = json.loads('''$METRICS''')
n = int(os.environ["REQUESTS"])
assert m["index_hits"] >= n, f"expected >= {n} index hits: {m}"
h = json.loads('''$HEALTH''')
assert h["index_loaded"] is True, f"index not loaded: {h}"
assert h["index_generation"] == 1, f"unexpected generation: {h}"
assert h["index_records"] == 8, f"unexpected record count: {h}"
v = json.loads('''$VERSION''')
assert isinstance(v["index_format"], int) and v["index_format"] >= 1, v
print(f"ok: {m['index_hits']} index hits; generation {h['index_generation']},"
      f" {h['index_records']} records, format v{v['index_format']}")
EOF

echo "== bake smoke: indexed replies byte-identical at --jobs 2 =="
read -r PID PORT < <(boot "$TMP/i2.log" --jobs 2 --index "$TMP/a.rvi")
transcript "$PORT" index "$TMP/i2.index"
transcript "$PORT" mixed "$TMP/i2.mixed"
drain "$PID" "$TMP/i2.log"
cmp "$TMP/ref.index" "$TMP/i2.index"
cmp "$TMP/ref.mixed" "$TMP/i2.mixed"
echo "ok: -j2 indexed transcripts byte-identical"

echo "== bake smoke: corrupt index degrades to compute =="
printf 'RVIXnot really an index file, just some bytes' >"$TMP/corrupt.rvi"
read -r PID PORT < <(boot "$TMP/c.log" --jobs 1 --index "$TMP/corrupt.rvi")
transcript "$PORT" index "$TMP/c.index"
HEALTH=$(probe "$PORT" '{"type":"health"}')
drain "$PID" "$TMP/c.log"
cmp "$TMP/ref.index" "$TMP/c.index"
python3 - <<EOF
import json
h = json.loads('''$HEALTH''')
assert h["index_loaded"] is False, f"corrupt index claimed loaded: {h}"
print("ok: corrupt index refused, server computed every answer")
EOF

echo "bake smoke: all checks passed"
